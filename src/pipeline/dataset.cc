#include "src/pipeline/dataset.h"

#include <algorithm>
#include <map>
#include <optional>

#include "src/pipeline/ops.h"

namespace plumber {

Status IteratorBase::GetNext(Element* out, bool* end_of_sequence) {
  if (ctx_->is_cancelled()) return CancelledError("pipeline cancelled");
  std::optional<CpuAccountingScope> scope;
  if (ctx_->tracing_enabled) scope.emplace(stats_);
  Status status = GetNextInternal(out, end_of_sequence);
  if (status.ok() && !*end_of_sequence) {
    stats_->RecordProduced(out->TotalBytes());
  }
  return status;
}

Status IteratorBase::GetNextBatch(std::vector<Element>* out,
                                  size_t max_elements,
                                  bool* end_of_sequence) {
  if (ctx_->is_cancelled()) return CancelledError("pipeline cancelled");
  std::optional<CpuAccountingScope> scope;
  if (ctx_->tracing_enabled) scope.emplace(stats_);
  *end_of_sequence = false;
  const size_t before = out->size();
  Status status = GetNextBatchInternal(out, max_elements, end_of_sequence);
  if (status.ok() && out->size() > before) {
    uint64_t bytes = 0;
    for (size_t i = before; i < out->size(); ++i) {
      bytes += (*out)[i].TotalBytes();
    }
    stats_->RecordProducedBatch(out->size() - before, bytes);
  }
  return status;
}

Status IteratorBase::GetNextBatchInternal(std::vector<Element>* out,
                                          size_t max_elements,
                                          bool* end_of_sequence) {
  for (size_t i = 0; i < max_elements; ++i) {
    Element element;
    bool end = false;
    RETURN_IF_ERROR(GetNextInternal(&element, &end));
    if (end) {
      *end_of_sequence = true;
      return OkStatus();
    }
    out->push_back(std::move(element));
  }
  return OkStatus();
}

StorageDevice* ShardDeviceFor(const NodeDef& def, PipelineContext* ctx) {
  if (ctx == nullptr || ctx->shard_devices == nullptr) return nullptr;
  const int shard = static_cast<int>(def.GetInt(kAttrShardIndex, -1));
  if (shard < 0) return nullptr;
  return ctx->shard_devices->DeviceFor(shard);
}

bool OpSupportsParallelism(const std::string& op) {
  return op == "map" || op == "interleave" || op == "map_and_batch";
}

bool OpIsSource(const std::string& op) {
  return op == "tfrecord" || op == "remote_read" || op == "interleave" ||
         op == "range" || op == "file_list";
}

int GraphEngineBatchSize(const GraphDef& graph) {
  int batch = 0;
  for (const auto& node : graph.nodes()) {
    batch = std::max(batch,
                     static_cast<int>(node.GetInt(kAttrEngineBatchSize, 0)));
  }
  return batch;
}

StatusOr<DatasetPtr> InstantiateGraph(const GraphDef& graph,
                                      PipelineContext* ctx) {
  static const std::map<std::string, DatasetFactory> kFactories = {
      {"range", &MakeRangeDataset},
      {"file_list", &MakeFileListDataset},
      {"tfrecord", &MakeTfRecordDataset},
      {"remote_read", &MakeRemoteReadDataset},
      {"interleave", &MakeInterleaveDataset},
      {"map", &MakeMapDataset},
      {"filter", &MakeFilterDataset},
      {"shuffle", &MakeShuffleDataset},
      {"shuffle_and_repeat", &MakeShuffleAndRepeatDataset},
      {"repeat", &MakeRepeatDataset},
      {"take", &MakeTakeDataset},
      {"skip", &MakeSkipDataset},
      {"batch", &MakeBatchDataset},
      {"prefetch", &MakePrefetchDataset},
      {"cache", &MakeCacheDataset},
      {"zip", &MakeZipDataset},
      {"concatenate", &MakeConcatenateDataset},
      {"map_and_batch", &MakeMapAndBatchDataset},
      {"shard_merge", &MakeShardMergeDataset},
  };
  ASSIGN_OR_RETURN(std::vector<std::string> order, graph.TopologicalOrder());
  std::map<std::string, DatasetPtr> built;
  for (const std::string& name : order) {
    const NodeDef* def = graph.FindNode(name);
    auto factory = kFactories.find(def->op);
    if (factory == kFactories.end()) {
      return UnimplementedError("unknown op: " + def->op);
    }
    std::vector<DatasetPtr> inputs;
    inputs.reserve(def->inputs.size());
    for (const std::string& input : def->inputs) {
      auto it = built.find(input);
      if (it == built.end()) {
        return InternalError("input not built: " + input);
      }
      inputs.push_back(it->second);
    }
    ASSIGN_OR_RETURN(DatasetPtr ds,
                     factory->second(*def, std::move(inputs), ctx));
    built.emplace(name, std::move(ds));
  }
  return built.at(graph.output());
}

}  // namespace plumber
