#include "src/pipeline/runner.h"

#include <chrono>
#include <thread>

#include "src/util/cpu_timer.h"

namespace plumber {

RunResult RunIterator(IteratorBase* iterator, const RunOptions& options,
                      const RunHooks& hooks) {
  RunResult result;
  Element element;
  const auto should_stop = [&] {
    return hooks.should_stop && hooks.should_stop();
  };
  // Warmup (not measured).
  for (int64_t i = 0; i < options.warmup_batches; ++i) {
    if (should_stop()) return result;
    bool end = false;
    result.status = iterator->GetNext(&element, &end);
    if (!result.status.ok() || end) {
      result.reached_end = end;
      return result;
    }
  }
  if (options.warmup_seconds > 0) {
    const int64_t warm_deadline =
        WallNanos() + static_cast<int64_t>(options.warmup_seconds * 1e9);
    while (WallNanos() < warm_deadline) {
      if (should_stop()) return result;
      bool end = false;
      result.status = iterator->GetNext(&element, &end);
      if (!result.status.ok() || end) {
        result.reached_end = end;
        return result;
      }
      if (options.model_step_seconds > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.model_step_seconds));
      }
    }
  }
  const int64_t start_wall = WallNanos();
  const int64_t start_cpu = ProcessCpuNanos();
  const int64_t deadline =
      options.max_seconds > 0
          ? start_wall + static_cast<int64_t>(options.max_seconds * 1e9)
          : 0;
  int64_t next_latency_total = 0;
  for (;;) {
    if (options.max_batches > 0 && result.batches >= options.max_batches) {
      break;
    }
    if (deadline > 0 && WallNanos() >= deadline) break;
    if (should_stop()) break;
    bool end = false;
    const int64_t t0 = WallNanos();
    result.status = iterator->GetNext(&element, &end);
    next_latency_total += WallNanos() - t0;
    if (!result.status.ok()) break;
    if (end) {
      result.reached_end = true;
      break;
    }
    ++result.batches;
    result.examples += static_cast<int64_t>(element.components.size());
    if (hooks.on_batch) hooks.on_batch(result.batches, result.examples);
    if (options.model_step_seconds > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.model_step_seconds));
    }
  }
  result.wall_seconds = (WallNanos() - start_wall) * 1e-9;
  result.process_cpu_seconds = (ProcessCpuNanos() - start_cpu) * 1e-9;
  if (result.wall_seconds > 0) {
    result.batches_per_second = result.batches / result.wall_seconds;
    result.examples_per_second = result.examples / result.wall_seconds;
    result.mean_cores_used =
        result.process_cpu_seconds / result.wall_seconds;
  }
  if (result.batches > 0) {
    result.mean_next_latency_seconds =
        next_latency_total * 1e-9 / result.batches;
  }
  return result;
}

RunResult RunPipeline(Pipeline& pipeline, const RunOptions& options) {
  auto iterator_or = pipeline.MakeIterator();
  if (!iterator_or.ok()) {
    RunResult result;
    result.status = iterator_or.status();
    return result;
  }
  auto iterator = std::move(iterator_or).value();
  return RunIterator(iterator.get(), options);
}

}  // namespace plumber
