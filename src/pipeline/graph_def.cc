#include "src/pipeline/graph_def.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

namespace plumber {

int64_t AttrValue::AsInt(int64_t fallback) const {
  if (auto* v = std::get_if<int64_t>(&value_)) return *v;
  if (auto* v = std::get_if<double>(&value_)) return static_cast<int64_t>(*v);
  if (auto* v = std::get_if<bool>(&value_)) return *v ? 1 : 0;
  return fallback;
}

double AttrValue::AsDouble(double fallback) const {
  if (auto* v = std::get_if<double>(&value_)) return *v;
  if (auto* v = std::get_if<int64_t>(&value_)) return static_cast<double>(*v);
  return fallback;
}

bool AttrValue::AsBool(bool fallback) const {
  if (auto* v = std::get_if<bool>(&value_)) return *v;
  if (auto* v = std::get_if<int64_t>(&value_)) return *v != 0;
  return fallback;
}

std::string AttrValue::AsString(const std::string& fallback) const {
  if (auto* v = std::get_if<std::string>(&value_)) return *v;
  return fallback;
}

std::string AttrValue::Serialize() const {
  std::ostringstream os;
  if (is_int()) {
    os << "int " << std::get<int64_t>(value_);
  } else if (is_double()) {
    os.precision(17);
    os << "double " << std::get<double>(value_);
  } else if (is_bool()) {
    os << "bool " << (std::get<bool>(value_) ? "true" : "false");
  } else {
    os << "string " << std::get<std::string>(value_);
  }
  return os.str();
}

StatusOr<AttrValue> AttrValue::Parse(const std::string& text) {
  std::istringstream is(text);
  std::string kind;
  is >> kind;
  if (kind == "int") {
    int64_t v = 0;
    is >> v;
    return AttrValue(v);
  }
  if (kind == "double") {
    double v = 0;
    is >> v;
    return AttrValue(v);
  }
  if (kind == "bool") {
    std::string v;
    is >> v;
    return AttrValue(v == "true");
  }
  if (kind == "string") {
    std::string rest;
    std::getline(is, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
    return AttrValue(rest);
  }
  return InvalidArgumentError("bad attr kind: " + kind);
}

int64_t NodeDef::GetInt(const std::string& key, int64_t fallback) const {
  auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second.AsInt(fallback);
}

double NodeDef::GetDouble(const std::string& key, double fallback) const {
  auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second.AsDouble(fallback);
}

bool NodeDef::GetBool(const std::string& key, bool fallback) const {
  auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second.AsBool(fallback);
}

std::string NodeDef::GetString(const std::string& key,
                               const std::string& fallback) const {
  auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second.AsString(fallback);
}

Status GraphDef::AddNode(NodeDef node) {
  if (node.name.empty()) return InvalidArgumentError("node name empty");
  if (FindNode(node.name) != nullptr) {
    return AlreadyExistsError("duplicate node: " + node.name);
  }
  nodes_.push_back(std::move(node));
  return OkStatus();
}

const NodeDef* GraphDef::FindNode(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

NodeDef* GraphDef::MutableNode(const std::string& name) {
  for (auto& n : nodes_) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

std::vector<std::string> GraphDef::Consumers(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& n : nodes_) {
    if (std::find(n.inputs.begin(), n.inputs.end(), name) != n.inputs.end()) {
      out.push_back(n.name);
    }
  }
  return out;
}

Status GraphDef::InsertAfter(const std::string& after, NodeDef node) {
  if (FindNode(after) == nullptr) {
    return NotFoundError("no such node: " + after);
  }
  if (FindNode(node.name) != nullptr) {
    return AlreadyExistsError("duplicate node: " + node.name);
  }
  node.inputs = {after};
  for (auto& n : nodes_) {
    for (auto& input : n.inputs) {
      if (input == after) input = node.name;
    }
  }
  if (output_ == after) output_ = node.name;
  nodes_.push_back(std::move(node));
  return OkStatus();
}

Status GraphDef::RemoveNode(const std::string& name) {
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [&](const NodeDef& n) { return n.name == name; });
  if (it == nodes_.end()) return NotFoundError("no such node: " + name);
  if (it->inputs.size() != 1) {
    return FailedPreconditionError("can only remove single-input nodes");
  }
  const std::string child = it->inputs[0];
  for (auto& n : nodes_) {
    for (auto& input : n.inputs) {
      if (input == name) input = child;
    }
  }
  if (output_ == name) output_ = child;
  nodes_.erase(it);
  return OkStatus();
}

StatusOr<std::vector<std::string>> GraphDef::TopologicalOrder() const {
  RETURN_IF_ERROR(Validate());
  std::vector<std::string> order;
  std::set<std::string> visited;
  std::set<std::string> in_progress;
  // Iterative DFS from the output.
  struct Frame {
    const NodeDef* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  const NodeDef* root = FindNode(output_);
  stack.push_back({root, 0});
  in_progress.insert(root->name);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_input < f.node->inputs.size()) {
      const std::string& child = f.node->inputs[f.next_input++];
      if (in_progress.count(child)) {
        return InvalidArgumentError("cycle through: " + child);
      }
      if (!visited.count(child)) {
        const NodeDef* cn = FindNode(child);
        stack.push_back({cn, 0});
        in_progress.insert(child);
      }
    } else {
      order.push_back(f.node->name);
      visited.insert(f.node->name);
      in_progress.erase(f.node->name);
      stack.pop_back();
    }
  }
  return order;
}

Status GraphDef::Validate() const {
  if (output_.empty()) return FailedPreconditionError("no output set");
  std::set<std::string> names;
  for (const auto& n : nodes_) {
    if (!names.insert(n.name).second) {
      return InvalidArgumentError("duplicate node: " + n.name);
    }
  }
  if (!names.count(output_)) {
    return NotFoundError("output node missing: " + output_);
  }
  for (const auto& n : nodes_) {
    for (const auto& input : n.inputs) {
      if (!names.count(input)) {
        return NotFoundError("unresolved input " + input + " of " + n.name);
      }
    }
  }
  return OkStatus();
}

std::string GraphDef::Serialize() const {
  std::ostringstream os;
  for (const auto& n : nodes_) {
    os << "node " << n.name << " " << n.op << "\n";
    for (const auto& input : n.inputs) os << "  input " << input << "\n";
    for (const auto& [key, value] : n.attrs) {
      os << "  attr " << key << " " << value.Serialize() << "\n";
    }
    os << "end\n";
  }
  os << "output " << output_ << "\n";
  return os.str();
}

StatusOr<GraphDef> GraphDef::Parse(const std::string& text) {
  GraphDef graph;
  std::istringstream is(text);
  std::string line;
  NodeDef current;
  bool in_node = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string token;
    ls >> token;
    if (token.empty() || token[0] == '#') continue;
    if (token == "node") {
      if (in_node) return InvalidArgumentError("nested node");
      current = NodeDef{};
      ls >> current.name >> current.op;
      in_node = true;
    } else if (token == "input") {
      if (!in_node) return InvalidArgumentError("input outside node");
      std::string input;
      ls >> input;
      current.inputs.push_back(input);
    } else if (token == "attr") {
      if (!in_node) return InvalidArgumentError("attr outside node");
      std::string key, rest;
      ls >> key;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
      ASSIGN_OR_RETURN(AttrValue value, AttrValue::Parse(rest));
      current.attrs.emplace(key, std::move(value));
    } else if (token == "end") {
      if (!in_node) return InvalidArgumentError("end outside node");
      RETURN_IF_ERROR(graph.AddNode(std::move(current)));
      in_node = false;
    } else if (token == "output") {
      std::string name;
      ls >> name;
      graph.SetOutput(name);
    } else {
      return InvalidArgumentError("bad line: " + line);
    }
  }
  if (in_node) return InvalidArgumentError("unterminated node");
  RETURN_IF_ERROR(graph.Validate());
  return graph;
}

std::string GraphDef::UniqueName(const std::string& prefix) const {
  if (FindNode(prefix) == nullptr) return prefix;
  for (int i = 1;; ++i) {
    std::string candidate = prefix + "_" + std::to_string(i);
    if (FindNode(candidate) == nullptr) return candidate;
  }
}

}  // namespace plumber
