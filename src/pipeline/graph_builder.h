// Fluent construction of GraphDefs (the "one line of code" user API's
// C++ equivalent). Each method appends a node and returns its name for
// chaining; Build() validates and returns the program.
#pragma once

#include <string>

#include "src/pipeline/graph_def.h"

namespace plumber {

class GraphBuilder {
 public:
  std::string Range(const std::string& name, int64_t count);
  std::string FileList(const std::string& name, const std::string& prefix);
  std::string TfRecord(const std::string& name, const std::string& input);
  // A record reader whose files live on a remote host: same elements
  // as TfRecord over the same file list, but every wire byte is
  // metered through a modeled remote NIC (bandwidth bytes/sec, 0 =
  // unlimited; latency seconds per transfer) and the local
  // PipelineContext NIC when one is attached.
  std::string RemoteRead(const std::string& name, const std::string& input,
                         double remote_nic_bandwidth = 0,
                         double remote_nic_latency = 0);
  std::string Interleave(const std::string& name, const std::string& input,
                         int cycle_length, int parallelism,
                         int block_length = 1);
  std::string Map(const std::string& name, const std::string& input,
                  const std::string& udf, int parallelism = 1,
                  bool deterministic = true);
  // A map stage the framework cannot parallelize (tunable=false).
  std::string SequentialMap(const std::string& name, const std::string& input,
                            const std::string& udf);
  std::string Filter(const std::string& name, const std::string& input,
                     const std::string& udf);
  std::string Shuffle(const std::string& name, const std::string& input,
                      int64_t buffer_size, int64_t seed = 7);
  std::string ShuffleAndRepeat(const std::string& name,
                               const std::string& input, int64_t buffer_size,
                               int64_t count = -1, int64_t seed = 11);
  std::string Repeat(const std::string& name, const std::string& input,
                     int64_t count = -1);
  std::string Take(const std::string& name, const std::string& input,
                   int64_t count);
  std::string Skip(const std::string& name, const std::string& input,
                   int64_t count);
  std::string Batch(const std::string& name, const std::string& input,
                    int64_t batch_size, bool drop_remainder = true);
  std::string Prefetch(const std::string& name, const std::string& input,
                       int64_t buffer_size);
  std::string Cache(const std::string& name, const std::string& input);
  std::string Zip(const std::string& name,
                  const std::vector<std::string>& inputs);
  std::string Concatenate(const std::string& name,
                          const std::vector<std::string>& inputs);
  std::string MapAndBatch(const std::string& name, const std::string& input,
                          const std::string& udf, int64_t batch_size,
                          int parallelism = 1, bool drop_remainder = true);

  // Finalizes with `output` as the root. Returns InvalidArgument if any
  // added node reused an existing name (the builder records the first
  // such error instead of silently dropping the node).
  StatusOr<GraphDef> Build(const std::string& output) const;

 private:
  std::string Add(NodeDef def);
  GraphDef graph_;
  Status status_;  // first Add error, surfaced by Build
};

}  // namespace plumber
