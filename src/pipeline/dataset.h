// Dataset / Iterator abstractions (the tf.data execution model).
//
// A Dataset is the declarative object built from a GraphDef node; at
// runtime it is unrolled into a tree of Iterators that pull data from
// their children recursively (paper Fig. 2). Iterators implement the
// standard iterator-model contract: construction = Open, GetNext =
// Next, destruction = Close.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/io/sim_filesystem.h"
#include "src/net/network_device.h"
#include "src/pipeline/element.h"
#include "src/pipeline/graph_def.h"
#include "src/pipeline/iterator_stats.h"
#include "src/pipeline/parallelism_governor.h"
#include "src/pipeline/udf.h"
#include "src/util/status.h"

namespace plumber {

inline constexpr int64_t kInfiniteCardinality = -1;
inline constexpr int64_t kUnknownCardinality = -2;

// Shared runtime context: filesystem, UDF registry, stats sink, machine
// speed scaling, cancellation, and tracing control. Owned by Pipeline;
// outlives all datasets/iterators created with it.
struct PipelineContext {
  SimFilesystem* fs = nullptr;
  const UdfRegistry* udfs = nullptr;
  StatsRegistry* stats = nullptr;
  // Multiplies every UDF's CPU cost; models slower/faster cores.
  double cpu_scale = 1.0;
  // How modeled UDF cost executes (see CpuWorkModel in udf.h).
  CpuWorkModel work_model = CpuWorkModel::kTimed;
  uint64_t seed = 42;
  // When false, CPU accounting scopes are skipped (the paper's
  // "tracing disabled" baseline for overhead measurements).
  bool tracing_enabled = true;
  // 0 = unlimited. Cache datasets fail with ResourceExhausted if
  // materialization would exceed this.
  uint64_t memory_budget_bytes = 0;
  // Disk-tier cache scratch: serve-path reads of a disk-tier cache
  // (kAttrCacheTier = "disk") are charged against this device's token
  // bucket at the modeled SSD bandwidth. Null = disk caches run
  // unmetered (and un-budgeted when scratch_budget_bytes = 0).
  StorageDevice* scratch_device = nullptr;
  uint64_t scratch_budget_bytes = 0;
  // Per-shard source devices: readers under a shard-stamped source
  // (kAttrShardIndex) open their record streams against
  // shard_devices->DeviceFor(shard) so every shard gets its own
  // modeled disk. Null = all reads go through fs->device().
  ShardDevicePool* shard_devices = nullptr;
  // This host's NIC (src/net): remote_read charges every record's bytes
  // through it (the receive side of the wire), in addition to the
  // remote endpoint's NIC. Null = the local endpoint is unmetered,
  // matching machines that never set MachineSpec::nic.
  NetworkDevice* nic = nullptr;
  // Engine batch size: how many elements parallel operators claim from
  // their input and hand off through their queues per lock acquisition.
  // 1 (the default) is element-at-a-time execution, identical to the
  // pre-batching engine; larger values amortize queue/lock overhead
  // when UDFs are cheap. Does not change what elements are produced.
  int engine_batch_size = 1;
  // Live parallelism control (multi-tenant execution). When set,
  // worker-pool iterators register resize listeners and honor published
  // per-node targets; null means worker counts are fixed at
  // instantiation from the graph attrs (the classic single-tenant
  // engine, zero overhead).
  GovernorPtr governor;
  std::shared_ptr<std::atomic<bool>> cancelled =
      std::make_shared<std::atomic<bool>>(false);

  bool is_cancelled() const {
    return cancelled->load(std::memory_order_relaxed);
  }
};

class IteratorBase {
 public:
  IteratorBase(PipelineContext* ctx, IteratorStats* stats)
      : ctx_(ctx), stats_(stats) {}
  virtual ~IteratorBase() = default;

  IteratorBase(const IteratorBase&) = delete;
  IteratorBase& operator=(const IteratorBase&) = delete;

  // Yields the next element or sets *end_of_sequence. Thread-compatible
  // (callers serialize access; parallel ops serialize child pulls).
  Status GetNext(Element* out, bool* end_of_sequence);

  // Appends up to `max_elements` elements to *out in one call — one
  // cancellation check and one CPU-accounting scope for the whole
  // batch. May return elements AND set *end_of_sequence when the
  // source is exhausted mid-batch; *end_of_sequence with an empty
  // append means exhaustion. Same serialization contract as GetNext.
  Status GetNextBatch(std::vector<Element>* out, size_t max_elements,
                      bool* end_of_sequence);

  IteratorStats* stats() const { return stats_; }

 protected:
  virtual Status GetNextInternal(Element* out, bool* end_of_sequence) = 0;

  // Default: loops GetNextInternal. Queue-backed iterators override to
  // drain whole batches per queue lock.
  virtual Status GetNextBatchInternal(std::vector<Element>* out,
                                      size_t max_elements,
                                      bool* end_of_sequence);

  PipelineContext* ctx_;
  IteratorStats* stats_;
};

class DatasetBase : public std::enable_shared_from_this<DatasetBase> {
 public:
  DatasetBase(NodeDef def, std::vector<std::shared_ptr<DatasetBase>> inputs)
      : def_(std::move(def)), inputs_(std::move(inputs)) {}
  virtual ~DatasetBase() = default;

  const NodeDef& def() const { return def_; }
  const std::string& name() const { return def_.name; }
  const std::string& op() const { return def_.op; }
  const std::vector<std::shared_ptr<DatasetBase>>& inputs() const {
    return inputs_;
  }

  virtual StatusOr<std::unique_ptr<IteratorBase>> MakeIterator(
      PipelineContext* ctx) const = 0;

  // Statically known output cardinality; kUnknownCardinality if it
  // cannot be derived without running.
  virtual int64_t Cardinality() const { return kUnknownCardinality; }

  // Marks any partially-filled materialization as complete so later
  // iterators behave as if a full epoch had already run. This is the
  // paper's §B steady-state simulation: "truncating the cached data"
  // lets a tracer or pick_best comparison observe warm-cache rates
  // without paying a whole cold epoch. Default: stateless, no-op.
  virtual void SimulateSteadyState() {}

 protected:
  IteratorStats* StatsFor(PipelineContext* ctx) const {
    return ctx->stats->GetOrCreate(def_.name, def_.op);
  }

  NodeDef def_;
  std::vector<std::shared_ptr<DatasetBase>> inputs_;
};

using DatasetPtr = std::shared_ptr<DatasetBase>;

// Instantiates the GraphDef into a dataset tree rooted at graph.output().
StatusOr<DatasetPtr> InstantiateGraph(const GraphDef& graph,
                                      PipelineContext* ctx);

}  // namespace plumber
