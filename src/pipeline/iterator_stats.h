// Per-iterator runtime statistics and producer-attributed CPU timing.
//
// This is the tracing half of Plumber (paper §4.1): every iterator
// counts elements produced, bytes produced, consumptions from children,
// and active thread-CPU nanoseconds. CPU attribution follows the
// paper's rule — "CPU timers stop when Datasets call into their
// children and start when control is returned" — implemented with a
// thread-local stack of accounting scopes: entering a child scope
// charges the elapsed thread-CPU delta to the parent and re-marks.
//
// The hot counters are sharded: each writer thread lands on one of
// kStatShards cache-line-aligned slots (assigned round-robin per
// thread), so N parallel-map workers bumping the same node's counters
// never contend on a shared cache line. Readers aggregate across
// shards; sums are exact (every increment lands in exactly one shard),
// which keeps the LP planner's inputs consistent.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace plumber {

namespace internal {
// Stable per-thread shard slot, assigned round-robin on first use so
// worker pools spread evenly across shards.
size_t ThreadStatShard();
}  // namespace internal

inline constexpr size_t kStatShards = 16;  // power of two

class IteratorStats {
 public:
  explicit IteratorStats(std::string name, std::string op)
      : name_(std::move(name)), op_(std::move(op)) {}

  const std::string& name() const { return name_; }
  const std::string& op() const { return op_; }

  void RecordProduced(uint64_t bytes) { RecordProducedBatch(1, bytes); }
  // One counter bump for a whole claimed batch (batched engine path).
  void RecordProducedBatch(uint64_t count, uint64_t bytes) {
    Shard& s = LocalShard();
    s.elements_produced.fetch_add(count, std::memory_order_relaxed);
    s.bytes_produced.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordConsumed() { RecordConsumedBatch(1); }
  void RecordConsumedBatch(uint64_t count) {
    LocalShard().elements_consumed.fetch_add(count,
                                             std::memory_order_relaxed);
  }
  void AddCpuNanos(int64_t ns) {
    if (ns > 0) LocalShard().cpu_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddBytesRead(uint64_t bytes) {
    LocalShard().bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  // Bytes this iterator moved across the modeled network (remote_read).
  void AddNetworkBytes(uint64_t bytes) {
    LocalShard().network_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void SetParallelism(int p) {
    parallelism_.store(p, std::memory_order_relaxed);
  }
  void SetUdfName(std::string udf) {
    std::lock_guard<std::mutex> lock(mu_);
    udf_name_ = std::move(udf);
  }
  void RecordQueueEmptyFraction(double f) {
    queue_empty_fraction_.store(f, std::memory_order_relaxed);
  }
  void AddCachedBytes(int64_t bytes) {
    LocalShard().cached_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  uint64_t elements_produced() const {
    return Sum(&Shard::elements_produced);
  }
  uint64_t elements_consumed() const {
    return Sum(&Shard::elements_consumed);
  }
  uint64_t bytes_produced() const { return Sum(&Shard::bytes_produced); }
  uint64_t bytes_read() const { return Sum(&Shard::bytes_read); }
  uint64_t network_bytes() const { return Sum(&Shard::network_bytes); }
  int64_t cpu_ns() const { return SumSigned(&Shard::cpu_ns); }
  int parallelism() const {
    return parallelism_.load(std::memory_order_relaxed);
  }
  std::string udf_name() const {
    std::lock_guard<std::mutex> lock(mu_);
    return udf_name_;
  }
  double queue_empty_fraction() const {
    return queue_empty_fraction_.load(std::memory_order_relaxed);
  }
  int64_t cached_bytes() const { return SumSigned(&Shard::cached_bytes); }

  void Reset();

 private:
  // One cache line per shard: seven 8-byte counters + padding.
  struct alignas(64) Shard {
    std::atomic<uint64_t> elements_produced{0};
    std::atomic<uint64_t> elements_consumed{0};
    std::atomic<uint64_t> bytes_produced{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> network_bytes{0};
    std::atomic<int64_t> cpu_ns{0};
    std::atomic<int64_t> cached_bytes{0};
  };

  Shard& LocalShard() {
    return shards_[internal::ThreadStatShard() & (kStatShards - 1)];
  }
  uint64_t Sum(std::atomic<uint64_t> Shard::*field) const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += (s.*field).load(std::memory_order_relaxed);
    }
    return total;
  }
  int64_t SumSigned(std::atomic<int64_t> Shard::*field) const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += (s.*field).load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string name_;
  const std::string op_;
  Shard shards_[kStatShards];
  std::atomic<int> parallelism_{1};
  std::atomic<double> queue_empty_fraction_{0};
  mutable std::mutex mu_;
  std::string udf_name_;
};

// Immutable copy of one iterator's counters; the tracer works on these.
struct IteratorStatsSnapshot {
  std::string name;
  std::string op;
  uint64_t elements_produced = 0;
  uint64_t elements_consumed = 0;
  uint64_t bytes_produced = 0;
  uint64_t bytes_read = 0;
  uint64_t network_bytes = 0;
  int64_t cpu_ns = 0;
  int parallelism = 1;
  std::string udf_name;
  double queue_empty_fraction = 0;
  int64_t cached_bytes = 0;
};

class StatsRegistry {
 public:
  // Returns the stats object for `name`, creating it if needed.
  IteratorStats* GetOrCreate(const std::string& name, const std::string& op);
  IteratorStats* Find(const std::string& name) const;

  std::vector<IteratorStatsSnapshot> Snapshot() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<IteratorStats>> stats_;
};

// RAII accounting scope. While a scope for stats S is on top of the
// calling thread's stack, elapsed thread-CPU time is charged to S.
class CpuAccountingScope {
 public:
  explicit CpuAccountingScope(IteratorStats* stats);
  ~CpuAccountingScope();

  CpuAccountingScope(const CpuAccountingScope&) = delete;
  CpuAccountingScope& operator=(const CpuAccountingScope&) = delete;
};

}  // namespace plumber
