// Per-iterator runtime statistics and producer-attributed CPU timing.
//
// This is the tracing half of Plumber (paper §4.1): every iterator
// counts elements produced, bytes produced, consumptions from children,
// and active thread-CPU nanoseconds. CPU attribution follows the
// paper's rule — "CPU timers stop when Datasets call into their
// children and start when control is returned" — implemented with a
// thread-local stack of accounting scopes: entering a child scope
// charges the elapsed thread-CPU delta to the parent and re-marks.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace plumber {

class IteratorStats {
 public:
  explicit IteratorStats(std::string name, std::string op)
      : name_(std::move(name)), op_(std::move(op)) {}

  const std::string& name() const { return name_; }
  const std::string& op() const { return op_; }

  void RecordProduced(uint64_t bytes) {
    elements_produced_.fetch_add(1, std::memory_order_relaxed);
    bytes_produced_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordConsumed() {
    elements_consumed_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCpuNanos(int64_t ns) {
    if (ns > 0) cpu_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddBytesRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void SetParallelism(int p) {
    parallelism_.store(p, std::memory_order_relaxed);
  }
  void SetUdfName(std::string udf) {
    std::lock_guard<std::mutex> lock(mu_);
    udf_name_ = std::move(udf);
  }
  void RecordQueueEmptyFraction(double f) {
    queue_empty_fraction_.store(f, std::memory_order_relaxed);
  }
  void AddCachedBytes(int64_t bytes) {
    cached_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  uint64_t elements_produced() const {
    return elements_produced_.load(std::memory_order_relaxed);
  }
  uint64_t elements_consumed() const {
    return elements_consumed_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_produced() const {
    return bytes_produced_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t cpu_ns() const { return cpu_ns_.load(std::memory_order_relaxed); }
  int parallelism() const {
    return parallelism_.load(std::memory_order_relaxed);
  }
  std::string udf_name() const {
    std::lock_guard<std::mutex> lock(mu_);
    return udf_name_;
  }
  double queue_empty_fraction() const {
    return queue_empty_fraction_.load(std::memory_order_relaxed);
  }
  int64_t cached_bytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  const std::string name_;
  const std::string op_;
  std::atomic<uint64_t> elements_produced_{0};
  std::atomic<uint64_t> elements_consumed_{0};
  std::atomic<uint64_t> bytes_produced_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<int64_t> cpu_ns_{0};
  std::atomic<int> parallelism_{1};
  std::atomic<double> queue_empty_fraction_{0};
  std::atomic<int64_t> cached_bytes_{0};
  mutable std::mutex mu_;
  std::string udf_name_;
};

// Immutable copy of one iterator's counters; the tracer works on these.
struct IteratorStatsSnapshot {
  std::string name;
  std::string op;
  uint64_t elements_produced = 0;
  uint64_t elements_consumed = 0;
  uint64_t bytes_produced = 0;
  uint64_t bytes_read = 0;
  int64_t cpu_ns = 0;
  int parallelism = 1;
  std::string udf_name;
  double queue_empty_fraction = 0;
  int64_t cached_bytes = 0;
};

class StatsRegistry {
 public:
  // Returns the stats object for `name`, creating it if needed.
  IteratorStats* GetOrCreate(const std::string& name, const std::string& op);
  IteratorStats* Find(const std::string& name) const;

  std::vector<IteratorStatsSnapshot> Snapshot() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<IteratorStats>> stats_;
};

// RAII accounting scope. While a scope for stats S is on top of the
// calling thread's stack, elapsed thread-CPU time is charged to S.
class CpuAccountingScope {
 public:
  explicit CpuAccountingScope(IteratorStats* stats);
  ~CpuAccountingScope();

  CpuAccountingScope(const CpuAccountingScope&) = delete;
  CpuAccountingScope& operator=(const CpuAccountingScope&) = delete;
};

}  // namespace plumber
