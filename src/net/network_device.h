// Simulated network interfaces.
//
// A NetworkDevice models a host NIC the same way src/io models storage:
// an aggregate bandwidth cap enforced by a token bucket, a fixed
// per-transfer latency, and exact byte/transfer counters. It is the
// resource behind the `remote_read` source op (both endpoints' NICs are
// charged for every record that crosses the wire) and behind fleet-level
// job migration (work stealing charges the serialized graph payload
// through the victim's and the thief's NICs).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/io/token_bucket.h"

namespace plumber {

struct NicSpec {
  std::string name = "unlimited";
  // Aggregate bandwidth cap in bytes/sec; 0 = unlimited.
  double max_bandwidth = 0;
  // Fixed latency charged per transfer, seconds.
  double latency_s = 0;

  // Unlimited NIC: transfers are free (the default, so existing
  // machines behave exactly as before the network model existed).
  static NicSpec Unlimited();
  // ~125 MB/s: commodity gigabit Ethernet.
  static NicSpec Gigabit();
  // ~1.25 GB/s: datacenter 10GbE.
  static NicSpec TenGigabit();
  // Bare token-bucket cap for bandwidth sweeps.
  static NicSpec TokenBucketLimit(double bytes_per_sec);
};

class NetworkDevice {
 public:
  explicit NetworkDevice(NicSpec spec);

  const NicSpec& spec() const { return spec_; }

  // Blocks to charge `bytes` crossing this NIC: the fixed per-transfer
  // latency (a modeled block, excluded from CPU attribution) followed
  // by token-bucket pacing, then accounts the transfer. Mirrors
  // StorageDevice::Charge.
  void Transfer(uint64_t bytes);

  // Changes the aggregate bandwidth cap (bandwidth sweeps).
  void SetBandwidth(double bytes_per_sec);

  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_transfers() const {
    return total_transfers_.load(std::memory_order_relaxed);
  }
  void ResetCounters();

 private:
  NicSpec spec_;
  TokenBucket bucket_;
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_transfers_{0};
};

}  // namespace plumber
