#include "src/net/network_device.h"

#include <chrono>
#include <thread>

#include "src/util/cpu_timer.h"

namespace plumber {

NicSpec NicSpec::Unlimited() { return NicSpec{}; }

NicSpec NicSpec::Gigabit() {
  NicSpec s;
  s.name = "1gbe";
  s.max_bandwidth = 125e6;
  s.latency_s = 100e-6;
  return s;
}

NicSpec NicSpec::TenGigabit() {
  NicSpec s;
  s.name = "10gbe";
  s.max_bandwidth = 1.25e9;
  s.latency_s = 50e-6;
  return s;
}

NicSpec NicSpec::TokenBucketLimit(double bytes_per_sec) {
  NicSpec s;
  s.name = "token_bucket";
  s.max_bandwidth = bytes_per_sec;
  return s;
}

NetworkDevice::NetworkDevice(NicSpec spec)
    : spec_(std::move(spec)),
      // Small burst (20ms of tokens) so short probes measure the
      // sustained rate, not the bucket's initial fill — same policy as
      // StorageDevice.
      bucket_(spec_.max_bandwidth, spec_.max_bandwidth * 0.02) {}

void NetworkDevice::Transfer(uint64_t bytes) {
  if (spec_.latency_s > 0) {
    BlockedRegion blocked;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(spec_.latency_s));
  }
  bucket_.Acquire(static_cast<double>(bytes));
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_transfers_.fetch_add(1, std::memory_order_relaxed);
}

void NetworkDevice::SetBandwidth(double bytes_per_sec) {
  spec_.max_bandwidth = bytes_per_sec;
  bucket_.SetRate(bytes_per_sec);
}

void NetworkDevice::ResetCounters() {
  total_bytes_.store(0, std::memory_order_relaxed);
  total_transfers_.store(0, std::memory_order_relaxed);
}

}  // namespace plumber
