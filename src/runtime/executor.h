// Executor: the shared multi-tenant runtime behind Session::Submit.
//
// One Executor serves one Session's modeled machine. Submit enqueues a
// Job and returns immediately; a scheduler thread admits jobs (up to
// max_concurrent_jobs at a time), instantiates their pipelines, and
// spawns one driver thread per job to run the measurement loop. On
// every arrival and departure the scheduler re-arbitrates the
// machine's modeled cores across all live jobs with the maximin
// allocator (src/core/multi_job_planner): each job's grant is recorded
// in its planned graph via rewriter::ApplyParallelismPlan and pushed
// into its running pipeline through a ParallelismGovernor, which grows
// or parks parallel-map worker pools in place. A job running alone is
// never arbitrated — its pipeline behaves exactly as the blocking
// single-tenant Flow::Run always did — and when departures leave a
// single survivor its configured knobs are restored.
//
// Scheduling is SLO-aware (see docs/scheduling.md): jobs carry an SLO
// class and a priority weight (JobOptions), the arbitration allocates
// class tiers in order with work-conserving redistribution, queued
// interactive jobs jump ahead of queued batch work, and each class has
// an admission backpressure policy (queue / reject / shed) evaluated
// at Submit. With defaults everywhere — every job kBatch at priority
// 1, kQueue admission — the behavior is exactly the flat fair-share
// scheduler this replaced.
//
// Lifetime: the Executor owns the scheduler and driver threads and
// keeps every unfinished job alive; destruction cancels all jobs and
// joins everything. Handles (shared_ptr<Job>) stay valid after the
// Executor (and its Session) are gone.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/core/machine.h"
#include "src/runtime/job.h"

namespace plumber {
namespace runtime {

// Backpressure applied at Submit time, per SLO class.
enum class AdmissionPolicy {
  // Queue without bound until the running cap frees up (historical
  // behavior; the default for every class).
  kQueue,
  // Refuse jobs that cannot start: a submission that would have to
  // queue behind the running cap finishes immediately as kFailed with
  // a kResourceExhausted status. `max_queued > 0` relaxes this to
  // allow that many queued jobs of the class before refusing.
  kReject,
  // Admit the newcomer, drop the oldest: the submission always enters
  // the queue, and if the class's queue depth then exceeds
  // `max_queued` the oldest queued job of the same class finishes as
  // kFailed / kResourceExhausted. `max_queued == 0` never sheds
  // (equivalent to kQueue).
  kShed,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

struct ClassAdmission {
  AdmissionPolicy policy = AdmissionPolicy::kQueue;
  // Queue-depth bound for kReject / kShed; see AdmissionPolicy.
  int max_queued = 0;
};

struct ExecutorOptions {
  // Jobs allowed to run concurrently; 0 = unlimited (every submission
  // is admitted at the next scheduler tick, cores arbitrated by the
  // planner rather than by queueing).
  int max_concurrent_jobs = 0;
  // When true (default) the scheduler honors JobOptions::slo: the
  // core arbitration allocates in class tiers — an interactive
  // arrival parks resident batch/best-effort worker pools down to
  // their floor of one worker per stage, and its departure restores
  // them — and queued interactive jobs jump ahead of queued batch
  // work. When false every job is planned in one tier and the queue
  // is strict FIFO (the pre-SLO scheduler, the bench's control arm).
  // JobOptions::priority weights apply either way.
  bool slo_preemption = true;
  // Per-class admission backpressure, indexed by SloClass ordinal.
  std::array<ClassAdmission, kNumSloClasses> admission = {};
};

// Point-in-time load view of one Executor: the dispatch signal a
// fleet-level balancer (src/fleet/fleet_runtime.h) compares across
// hosts, and a cheap observability hook on its own.
struct ExecutorLoadSnapshot {
  int queued_jobs = 0;   // submitted, not yet admitted
  int running_jobs = 0;  // admitted, driver live
  // Sum of the live jobs' current integer parallelism grants (the
  // arbitrated plan when re-planned, the configured knobs otherwise):
  // how many modeled cores the running set is entitled to occupy.
  double granted_cores = 0;
  // The same queue/running view broken out by SloClass ordinal — the
  // per-class signal a fleet dispatcher or dashboard reads.
  std::array<int, kNumSloClasses> queued_by_class = {};
  std::array<int, kNumSloClasses> running_by_class = {};
};

class Executor {
 public:
  // `pipeline_options` derives instantiation options per admission and
  // `machine` supplies the core budget per re-plan; both are invoked
  // on executor threads and must stay valid for the executor's life
  // (the Session's state owns both the factories' target and the
  // executor itself).
  Executor(std::function<PipelineOptions()> pipeline_options,
           std::function<MachineSpec()> machine,
           ExecutorOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Enqueues a job for admission. Never blocks; failures (including
  // submission after shutdown) surface through the job's phase/result.
  JobPtr Submit(GraphDef graph, JobOptions options);

  int live_jobs() const;
  int queued_jobs() const;
  // Queue depth, running set, and granted cores in one consistent view.
  ExecutorLoadSnapshot LoadSnapshot() const;

 private:
  void SchedulerLoop();
  // Inserts into pending_ in class-tier order (interactive ahead of
  // batch ahead of best-effort) when slo_preemption is on; plain FIFO
  // otherwise. Within a class, jobs with a latency_target_s run
  // earliest-deadline-first ahead of deadline-free jobs, which keep
  // FIFO among themselves.
  void EnqueuePendingLocked(JobPtr job);
  // Absolute completion deadline (submit + latency_target_s) in wall
  // nanos; int64 max for jobs without a target.
  static int64_t DeadlineNs(const Job& job);
  // Applies the submitting class's AdmissionPolicy. Returns false when
  // the job was refused (already finished as kFailed).
  bool AdmitToQueueLocked(JobPtr job);
  void AdmitLocked(JobPtr job);
  // Recomputes the multi-job core split over the live set and applies
  // it (planned graphs + governor targets). Single survivor gets its
  // configured knobs back; a job running alone is never touched.
  void ReplanLocked();
  void DriverLoop(JobPtr job);
  void FinishWithoutRunning(Job* job, JobPhase phase, Status status);
  void JoinFinishedDriversLocked();

  const std::function<PipelineOptions()> pipeline_options_;
  const std::function<MachineSpec()> machine_;
  const ExecutorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t next_job_id_ = 1;
  std::deque<JobPtr> pending_;
  std::map<uint64_t, JobPtr> live_;
  // Jobs whose partially-traced demand was already warned about, so
  // the DemandFromGraph contract violation logs once per job rather
  // than on every re-plan. Pruned on departure.
  std::set<uint64_t> demand_warned_;
  std::map<uint64_t, std::thread> drivers_;
  std::vector<uint64_t> finished_driver_ids_;
  std::thread scheduler_;
};

}  // namespace runtime
}  // namespace plumber
