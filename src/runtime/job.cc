#include "src/runtime/job.h"

#include "src/util/cpu_timer.h"

namespace plumber {
namespace runtime {

const char* JobPhaseName(JobPhase phase) {
  switch (phase) {
    case JobPhase::kQueued:
      return "queued";
    case JobPhase::kRunning:
      return "running";
    case JobPhase::kDone:
      return "done";
    case JobPhase::kCancelled:
      return "cancelled";
    case JobPhase::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* SloClassName(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return "interactive";
    case SloClass::kBatch:
      return "batch";
    case SloClass::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

Job::Job(uint64_t id, std::string name, GraphDef graph, JobOptions options)
    : id_(id),
      name_(std::move(name)),
      output_node_(graph.output()),
      options_(std::move(options)),
      graph_(graph),
      planned_graph_(std::move(graph)),
      submit_ns_(WallNanos()) {}

JobPhase Job::phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_;
}

bool Job::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_ != JobPhase::kQueued && phase_ != JobPhase::kRunning;
}

bool Job::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return start_ns_ > 0;
}

void Job::Cancel() {
  cancel_requested_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  // Trip the per-job cancellation token: the driver (and every worker
  // inside the pipeline) observes it cooperatively. A queued job is
  // finished by the scheduler on its next tick.
  if (pipeline_ != nullptr) pipeline_->Cancel();
}

void Job::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  finished_cv_.wait(lock, [&] {
    return phase_ != JobPhase::kQueued && phase_ != JobPhase::kRunning;
  });
}

// The end of a job's queueing: run start, or — for jobs that never ran
// (cancelled while queued, failed instantiation) — the terminal
// timestamp, so queue_seconds stops growing once the job is finished.
// Requires mu_.
static int64_t QueueEndNanos(int64_t start_ns, int64_t finish_ns) {
  if (start_ns > 0) return start_ns;
  if (finish_ns > 0) return finish_ns;
  return WallNanos();
}

JobProgress Job::Progress() const {
  JobProgress progress;
  std::lock_guard<std::mutex> lock(mu_);
  progress.phase = phase_;
  progress.batches = batches_.load(std::memory_order_relaxed);
  progress.elements = elements_.load(std::memory_order_relaxed);
  progress.queue_seconds =
      (QueueEndNanos(start_ns_, finish_ns_) - submit_ns_) * 1e-9;
  if (start_ns_ > 0) {
    progress.run_seconds =
        ((finish_ns_ > 0 ? finish_ns_ : WallNanos()) - start_ns_) * 1e-9;
  }
  progress.node_stats =
      pipeline_ != nullptr ? pipeline_->stats().Snapshot() : final_stats_;
  return progress;
}

double Job::queue_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (QueueEndNanos(start_ns_, finish_ns_) - submit_ns_) * 1e-9;
}

GraphDef Job::planned_graph() const {
  std::lock_guard<std::mutex> lock(mu_);
  return planned_graph_;
}

void Job::Finish(JobPhase phase, RunResult result,
                 std::vector<IteratorStatsSnapshot> stats) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = phase;
    result_ = std::move(result);
    final_stats_ = std::move(stats);
    finish_ns_ = WallNanos();
    // Tear the execution down inside the lock so Progress() never
    // observes a half-destroyed pipeline; destruction joins the
    // pipeline's worker threads (the token is already tripped).
    if (pipeline_ != nullptr) pipeline_->Cancel();
    iterator_.reset();
    pipeline_.reset();
  }
  finished_cv_.notify_all();
}

}  // namespace runtime
}  // namespace plumber
