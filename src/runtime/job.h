// Job: the state machine behind one asynchronous pipeline execution.
//
// A Job is created by Executor::Submit and moves through
//   kQueued -> kRunning -> {kDone, kCancelled, kFailed}
// (kQueued can also jump straight to kCancelled). The Executor's
// scheduler thread performs admission (instantiates the pipeline,
// arbitrates cores across live jobs) and a per-job driver thread runs
// the measurement loop; this object is the shared, lock-protected
// record both sides and any number of user-facing handles observe.
//
// Layering: runtime sits on pipeline/ + core/ only. The user-facing
// JobHandle (src/api/job_handle.h) wraps a shared_ptr<Job> and
// assembles the api-level RunReport from the fields here.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/pipeline/pipeline.h"
#include "src/pipeline/runner.h"

namespace plumber {
namespace runtime {

enum class JobPhase { kQueued, kRunning, kDone, kCancelled, kFailed };

const char* JobPhaseName(JobPhase phase);

// SLO class of a job: how the scheduler treats it when the machine is
// contended. Classes are allocation *tiers* — the executor plans
// interactive jobs first (parking batch/best-effort worker pools down
// to their floor of one worker per stage), batch next, best-effort
// last — and each class carries its own admission backpressure policy
// (ExecutorOptions::admission). Within a class, JobOptions::priority
// weights the water-fill share. The enum order IS the tier order.
enum class SloClass { kInteractive = 0, kBatch = 1, kBestEffort = 2 };
inline constexpr int kNumSloClasses = 3;

const char* SloClassName(SloClass slo);

struct JobOptions {
  // Stop conditions, warmup, simulated step time, engine batch override
  // — exactly what Flow::Run accepts (Run is Submit + Wait).
  RunOptions run;
  // Label for reports/progress; "job-<id>" when empty.
  std::string name;
  // Latency class. kBatch (the default) reproduces the classic
  // all-jobs-equal arbitration when every job uses it.
  SloClass slo = SloClass::kBatch;
  // Weight within the class: the weighted water-fill equalizes
  // rate/priority across same-class jobs, so a priority-3 job targets
  // 3x the rate (and so roughly 3x the cores) of a priority-1 peer.
  // Values <= 0 are treated as 1.
  double priority = 1.0;
  // Optional completion-latency target in seconds (0 = none). The
  // executor acts on it twice: queued jobs of the same SLO class run
  // earliest-deadline-first (ahead of deadline-free peers), and a
  // queued job whose deadline has already passed is shed with
  // kResourceExhausted instead of burning cores on a guaranteed miss.
  // TraceReplayDriver scores per-class attainment against it.
  double latency_target_s = 0;
};

// Live snapshot of a job, observable at any phase.
struct JobProgress {
  JobPhase phase = JobPhase::kQueued;
  int64_t batches = 0;
  int64_t elements = 0;
  double queue_seconds = 0;  // submit -> run start (or now if queued)
  double run_seconds = 0;    // run start -> now (or finish)
  std::vector<IteratorStatsSnapshot> node_stats;
};

class Job {
 public:
  Job(uint64_t id, std::string name, GraphDef graph, JobOptions options);

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::string& output_node() const { return output_node_; }
  const JobOptions& options() const { return options_; }

  JobPhase phase() const;
  bool finished() const;
  // True once the job was admitted and execution began; false for jobs
  // that failed instantiation or were cancelled while still queued.
  bool started() const;

  // Requests cooperative cancellation: a queued job finishes without
  // running, a running job's pipeline token is tripped and the driver
  // stops at the next batch boundary.
  void Cancel();

  // Blocks until the job reaches a terminal phase.
  void Wait();

  // Live stats: counters from the driver loop plus a point-in-time
  // snapshot of the pipeline's per-node stats (the final snapshot once
  // the job finished).
  JobProgress Progress() const;

  // Terminal-state accessors (call after Wait / finished()).
  const RunResult& result() const { return result_; }
  const std::vector<IteratorStatsSnapshot>& final_stats() const {
    return final_stats_;
  }
  double queue_seconds() const;

  // The job's graph as last re-planned by the executor (equals the
  // submitted graph until arbitration touches it).
  GraphDef planned_graph() const;

 private:
  friend class Executor;

  void Finish(JobPhase phase, RunResult result,
              std::vector<IteratorStatsSnapshot> stats);

  const uint64_t id_;
  const std::string name_;
  const std::string output_node_;
  const JobOptions options_;

  mutable std::mutex mu_;
  std::condition_variable finished_cv_;
  JobPhase phase_ = JobPhase::kQueued;
  // The submitted program (instantiation source, never mutated) and
  // the arbitration bookkeeping copy ApplyParallelismPlan rewrites.
  const GraphDef graph_;
  GraphDef planned_graph_;
  bool arbitrated_ = false;  // ever re-planned away from the submitted knobs
  GovernorPtr governor_;     // live worker retargeting channel
  std::unique_ptr<Pipeline> pipeline_;
  std::unique_ptr<IteratorBase> iterator_;

  std::atomic<bool> cancel_requested_{false};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> elements_{0};
  int64_t submit_ns_ = 0;
  int64_t start_ns_ = 0;   // 0 until the driver starts
  int64_t finish_ns_ = 0;  // 0 until terminal

  RunResult result_;
  std::vector<IteratorStatsSnapshot> final_stats_;
};

using JobPtr = std::shared_ptr<Job>;

}  // namespace runtime
}  // namespace plumber
