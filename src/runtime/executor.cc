#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "src/core/multi_job_planner.h"
#include "src/core/rewriter.h"
#include "src/pipeline/ops.h"
#include "src/util/cpu_timer.h"
#include "src/util/logging.h"

namespace plumber {
namespace runtime {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kQueue:
      return "queue";
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kShed:
      return "shed";
  }
  return "unknown";
}

Executor::Executor(std::function<PipelineOptions()> pipeline_options,
                   std::function<MachineSpec()> machine,
                   ExecutorOptions options)
    : pipeline_options_(std::move(pipeline_options)),
      machine_(std::move(machine)),
      options_(options),
      scheduler_([this] { SchedulerLoop(); }) {}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (JobPtr& job : pending_) {
      FinishWithoutRunning(job.get(), JobPhase::kCancelled,
                           CancelledError("executor shut down"));
    }
    pending_.clear();
    // Trip every live job's token; drivers notice and wind down.
    for (auto& [id, job] : live_) {
      (void)id;
      job->Cancel();
    }
    cv_.notify_all();
  }
  scheduler_.join();
  for (auto& [id, thread] : drivers_) {
    (void)id;
    if (thread.joinable()) thread.join();
  }
}

JobPtr Executor::Submit(GraphDef graph, JobOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_job_id_++;
  if (options.name.empty()) options.name = "job-" + std::to_string(id);
  const std::string name = options.name;
  auto job = std::make_shared<Job>(id, name, std::move(graph),
                                   std::move(options));
  if (stop_) {
    FinishWithoutRunning(job.get(), JobPhase::kCancelled,
                         CancelledError("executor shut down"));
    return job;
  }
  if (AdmitToQueueLocked(job)) cv_.notify_all();
  return job;
}

int64_t Executor::DeadlineNs(const Job& job) {
  const double target = job.options().latency_target_s;
  if (target <= 0) return std::numeric_limits<int64_t>::max();
  return job.submit_ns_ + static_cast<int64_t>(target * 1e9);
}

void Executor::EnqueuePendingLocked(JobPtr job) {
  auto pos = pending_.end();
  if (options_.slo_preemption) {
    // Class-ordered queue: ahead of the first queued job in a lower
    // tier (higher ordinal), behind every same-or-better-tier job.
    // Within a class, earliest-deadline-first: a job with a
    // latency_target_s slots ahead of any same-class job due later
    // (deadline-free jobs score +inf, so they stay FIFO at the back of
    // their class and never reorder among themselves).
    const int tier = static_cast<int>(job->options().slo);
    const int64_t deadline = DeadlineNs(*job);
    pos = std::find_if(
        pending_.begin(), pending_.end(),
        [tier, deadline](const JobPtr& queued) {
          const int queued_tier = static_cast<int>(queued->options().slo);
          if (queued_tier != tier) return queued_tier > tier;
          return DeadlineNs(*queued) > deadline;
        });
  }
  pending_.insert(pos, std::move(job));
}

bool Executor::AdmitToQueueLocked(JobPtr job) {
  const SloClass slo = job->options().slo;
  const ClassAdmission& admission =
      options_.admission[static_cast<size_t>(slo)];
  const auto queued_of_class = [&] {
    int count = 0;
    for (const JobPtr& queued : pending_) {
      if (queued->options().slo == slo) ++count;
    }
    return count;
  };
  // "Must queue" means the running cap is full counting everything
  // already ahead of this submission — with an unlimited cap every
  // pending job is admitted at the next scheduler tick, so
  // backpressure never engages.
  const bool must_queue =
      options_.max_concurrent_jobs > 0 &&
      static_cast<int>(live_.size() + pending_.size()) >=
          options_.max_concurrent_jobs;
  if (admission.policy == AdmissionPolicy::kReject && must_queue &&
      queued_of_class() >= admission.max_queued) {
    FinishWithoutRunning(
        job.get(), JobPhase::kFailed,
        ResourceExhaustedError(
            std::string("admission rejected: class '") + SloClassName(slo) +
            "' is at capacity (policy reject, " +
            std::to_string(queued_of_class()) + " queued)"));
    return false;
  }
  EnqueuePendingLocked(std::move(job));
  if (admission.policy == AdmissionPolicy::kShed && admission.max_queued > 0) {
    while (queued_of_class() > admission.max_queued) {
      // Shed the oldest queued job of the class (the head of its FIFO
      // run): under overload, fresher requests carry fresher intent.
      auto oldest = std::find_if(
          pending_.begin(), pending_.end(),
          [slo](const JobPtr& queued) { return queued->options().slo == slo; });
      FinishWithoutRunning(
          oldest->get(), JobPhase::kFailed,
          ResourceExhaustedError(
              std::string("shed from admission queue: class '") +
              SloClassName(slo) + "' exceeded max_queued=" +
              std::to_string(admission.max_queued)));
      pending_.erase(oldest);
    }
  }
  return true;
}

int Executor::live_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(live_.size());
}

int Executor::queued_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(pending_.size());
}

ExecutorLoadSnapshot Executor::LoadSnapshot() const {
  ExecutorLoadSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.queued_jobs = static_cast<int>(pending_.size());
  snapshot.running_jobs = static_cast<int>(live_.size());
  for (const JobPtr& job : pending_) {
    ++snapshot.queued_by_class[static_cast<size_t>(job->options().slo)];
  }
  for (const auto& [id, job] : live_) {
    (void)id;
    ++snapshot.running_by_class[static_cast<size_t>(job->options().slo)];
    // planned_graph_ is the submitted graph until arbitration rewrites
    // it, so the sum covers both arbitrated grants and configured
    // knobs. Same lock order as AdmitLocked (executor mu_ -> job mu_).
    std::lock_guard<std::mutex> jlock(job->mu_);
    for (const std::string& node : rewriter::TunableNodes(job->planned_graph_)) {
      const NodeDef* def = job->planned_graph_.FindNode(node);
      snapshot.granted_cores +=
          static_cast<double>(def->GetInt(kAttrParallelism, 1));
    }
  }
  return snapshot;
}

void Executor::FinishWithoutRunning(Job* job, JobPhase phase, Status status) {
  RunResult result;
  result.status = std::move(status);
  job->Finish(phase, std::move(result), {});
}

void Executor::JoinFinishedDriversLocked() {
  for (uint64_t id : finished_driver_ids_) {
    auto it = drivers_.find(id);
    if (it == drivers_.end()) continue;
    // The driver published its id as its final locked action, so the
    // join only waits out the thread's return.
    it->second.join();
    drivers_.erase(it);
  }
  finished_driver_ids_.clear();
}

void Executor::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    JoinFinishedDriversLocked();
    if (stop_) return;
    // Sweep queued cancellations so a Cancel before admission doesn't
    // sit behind the concurrency cap forever, and shed queued jobs
    // whose completion deadline has already passed: running one can
    // only miss harder while starving jobs that can still make it.
    const int64_t now_ns = WallNanos();
    for (auto it = pending_.begin(); it != pending_.end();) {
      if ((*it)->cancel_requested_.load(std::memory_order_acquire)) {
        FinishWithoutRunning(it->get(), JobPhase::kCancelled,
                             CancelledError("cancelled before admission"));
        it = pending_.erase(it);
      } else if (DeadlineNs(**it) <= now_ns) {
        FinishWithoutRunning(
            it->get(), JobPhase::kFailed,
            ResourceExhaustedError(
                "shed before running: latency target of " +
                std::to_string((*it)->options().latency_target_s) +
                "s expired in the queue"));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    while (!pending_.empty() &&
           (options_.max_concurrent_jobs <= 0 ||
            static_cast<int>(live_.size()) < options_.max_concurrent_jobs)) {
      JobPtr job = std::move(pending_.front());
      pending_.pop_front();
      AdmitLocked(std::move(job));
    }
    // Queued cancels have no wakeup channel into the scheduler, so the
    // wait re-checks on a short tick.
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void Executor::AdmitLocked(JobPtr job) {
  job->governor_ = std::make_shared<ParallelismGovernor>();
  live_[job->id()] = job;
  // Arbitrate with the newcomer in the live set *before* instantiation
  // so its pipeline starts at its granted worker counts (the governor
  // target bounds the initial pool) instead of grabbing its configured
  // demand and shrinking a moment later.
  ReplanLocked();

  PipelineOptions popts = pipeline_options_();
  if (job->options().run.engine_batch_size > 0) {
    // Explicit per-job override: wins over both the session value and
    // any graph-recorded batch size, exactly like Flow::Run.
    popts.engine_batch_size = job->options().run.engine_batch_size;
  }
  popts.governor = job->governor_;
  auto pipeline_or = Pipeline::Create(job->graph_, popts);
  if (!pipeline_or.ok()) {
    live_.erase(job->id());
    FinishWithoutRunning(job.get(), JobPhase::kFailed, pipeline_or.status());
    ReplanLocked();
    return;
  }
  auto pipeline = std::move(pipeline_or).value();
  auto iterator_or = pipeline->MakeIterator();
  if (!iterator_or.ok()) {
    live_.erase(job->id());
    FinishWithoutRunning(job.get(), JobPhase::kFailed, iterator_or.status());
    ReplanLocked();
    return;
  }
  {
    std::lock_guard<std::mutex> jlock(job->mu_);
    job->pipeline_ = std::move(pipeline);
    job->iterator_ = std::move(iterator_or).value();
    job->phase_ = JobPhase::kRunning;
    job->start_ns_ = WallNanos();
  }
  // A cancel that raced admission: trip the freshly created token so
  // the driver stops immediately.
  if (job->cancel_requested_.load(std::memory_order_acquire)) job->Cancel();
  drivers_[job->id()] = std::thread([this, job] { DriverLoop(job); });
}

void Executor::ReplanLocked() {
  std::vector<JobPtr> live;
  live.reserve(live_.size());
  for (auto& [id, job] : live_) {
    (void)id;
    live.push_back(job);
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    // Single tenant: the job owns the machine. Restore its configured
    // knobs if earlier arbitration scaled it down; a job that was never
    // arbitrated is never touched (bit-identical Flow::Run behavior).
    JobPtr& job = live.front();
    bool restore = false;
    {
      std::lock_guard<std::mutex> jlock(job->mu_);
      if (job->arbitrated_) {
        job->planned_graph_ = job->graph_;
        job->arbitrated_ = false;
        restore = true;
      }
    }
    if (restore) {
      for (const std::string& node : rewriter::TunableNodes(job->graph_)) {
        job->governor_->SetTarget(node, 0);  // back to configured
      }
    }
    return;
  }

  std::vector<JobDemand> demands;
  demands.reserve(live.size());
  for (const JobPtr& job : live) {
    std::string warning;
    JobDemand demand =
        DemandFromGraph(std::to_string(job->id()), job->graph_, &warning);
    if (!warning.empty() && demand_warned_.insert(job->id()).second) {
      // Partially traced graph (see the DemandFromGraph contract):
      // unstamped tunable stages dodge arbitration. Once per job, not
      // per re-plan.
      PLOG(Warning) << "job '" << job->name() << "': " << warning;
    }
    demand.weight = job->options().priority;
    if (options_.slo_preemption) {
      demand.tier = static_cast<int>(job->options().slo);
    }
    demands.push_back(std::move(demand));
  }
  const MultiJobPlan plan =
      PlanMultiJobAllocation(demands, machine_().num_cores);
  for (const JobPtr& job : live) {
    auto it = plan.jobs.find(std::to_string(job->id()));
    if (it == plan.jobs.end() || it->second.parallelism.empty()) continue;
    const LpPlan& job_plan = it->second;
    {
      std::lock_guard<std::mutex> jlock(job->mu_);
      // Re-derive from the submitted graph so consecutive re-plans
      // never compound (grants are absolute, not deltas).
      job->planned_graph_ = job->graph_;
      (void)rewriter::ApplyParallelismPlan(&job->planned_graph_, job_plan);
      job->arbitrated_ = true;
    }
    for (const auto& [node, parallelism] : job_plan.parallelism) {
      job->governor_->SetTarget(node, parallelism);
    }
  }
}

void Executor::DriverLoop(JobPtr job) {
  RunOptions run = job->options().run;
  Job* raw = job.get();
  RunHooks hooks;
  hooks.on_batch = [raw](int64_t batches, int64_t elements) {
    raw->batches_.store(batches, std::memory_order_relaxed);
    raw->elements_.store(elements, std::memory_order_relaxed);
  };
  hooks.should_stop = [raw] {
    return raw->cancel_requested_.load(std::memory_order_acquire);
  };
  IteratorBase* iterator = nullptr;
  Pipeline* pipeline = nullptr;
  {
    std::lock_guard<std::mutex> jlock(job->mu_);
    iterator = job->iterator_.get();
    pipeline = job->pipeline_.get();
  }
  RunResult result;
  bool warmup_failed = false;
  if (run.warmup_seconds > 0) {
    // Warm on the same iterator tree (so caches fill), then reset the
    // counters so node stats and bytes cover only the measured window
    // — the exact sequence the blocking Flow::Run used to run inline.
    RunOptions warmup;
    warmup.max_seconds = run.warmup_seconds;
    warmup.model_step_seconds = run.model_step_seconds;
    // Warmup batches are excluded from the job's Progress counters
    // (they restart for the measured window, and a backwards-moving
    // counter would confuse pollers); only the stop hook rides along.
    RunHooks warmup_hooks;
    warmup_hooks.should_stop = hooks.should_stop;
    result = RunIterator(iterator, warmup, warmup_hooks);
    run.warmup_seconds = 0;
    if (!result.status.ok()) {
      warmup_failed = true;
    } else {
      pipeline->stats().ResetAll();
    }
  }
  if (!warmup_failed) result = RunIterator(iterator, run, hooks);

  std::vector<IteratorStatsSnapshot> stats = pipeline->stats().Snapshot();
  JobPhase phase = JobPhase::kDone;
  if (job->cancel_requested_.load(std::memory_order_acquire) ||
      result.status.code() == StatusCode::kCancelled) {
    phase = JobPhase::kCancelled;
    // A cooperative cancel is a clean outcome, not a run error: the
    // partial counts stand and the report's status stays OK.
    if (result.status.code() == StatusCode::kCancelled) {
      result.status = OkStatus();
    }
  } else if (!result.status.ok()) {
    phase = JobPhase::kFailed;
  }
  job->Finish(phase, std::move(result), std::move(stats));
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(job->id());
    demand_warned_.erase(job->id());
    ReplanLocked();
    finished_driver_ids_.push_back(job->id());
    cv_.notify_all();
  }
}

}  // namespace runtime
}  // namespace plumber
