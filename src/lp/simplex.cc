#include "src/lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace plumber {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Dense tableau:
//   rows_ x cols_ coefficient matrix `a`, rhs `b`, objective row `z`.
// Column layout: [structural vars | slack/surplus | artificials].
class Tableau {
 public:
  Tableau(int rows, int cols) : rows_(rows), cols_(cols),
                                a_(rows, std::vector<double>(cols, 0.0)),
                                b_(rows, 0.0), basis_(rows, -1) {}

  std::vector<std::vector<double>>& a() { return a_; }
  std::vector<double>& b() { return b_; }
  std::vector<int>& basis() { return basis_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  // Runs primal simplex minimizing cost vector `cost`; returns false if
  // unbounded. Uses Bland's rule on ties to avoid cycling.
  bool Minimize(const std::vector<double>& cost, double tol, int max_iter) {
    // Reduced costs maintained implicitly: recompute each iteration.
    // O(iterations * rows * cols) — fine at this scale.
    for (int iter = 0; iter < max_iter; ++iter) {
      // y = c_B B^{-1} is implicit: tableau is kept in canonical form,
      // so reduced cost of column j is cost[j] - sum_i cost[basis_[i]] * a[i][j].
      int entering = -1;
      double best = -tol;
      for (int j = 0; j < cols_; ++j) {
        double rc = cost[j];
        for (int i = 0; i < rows_; ++i) rc -= cost[basis_[i]] * a_[i][j];
        if (rc < best - 1e-15) {
          best = rc;
          entering = j;
        }
      }
      if (entering < 0) return true;  // optimal
      // Ratio test (Bland's rule on ties).
      int leaving = -1;
      double best_ratio = kInf;
      for (int i = 0; i < rows_; ++i) {
        if (a_[i][entering] > tol) {
          const double ratio = b_[i] / a_[i][entering];
          if (ratio < best_ratio - tol ||
              (ratio < best_ratio + tol &&
               (leaving < 0 || basis_[i] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = i;
          }
        }
      }
      if (leaving < 0) return false;  // unbounded
      Pivot(leaving, entering);
    }
    return true;  // iteration cap; treat as converged
  }

  void Pivot(int row, int col) {
    const double pivot = a_[row][col];
    assert(std::abs(pivot) > 1e-12);
    for (int j = 0; j < cols_; ++j) a_[row][j] /= pivot;
    b_[row] /= pivot;
    for (int i = 0; i < rows_; ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (factor == 0) continue;
      for (int j = 0; j < cols_; ++j) a_[i][j] -= factor * a_[row][j];
      b_[i] -= factor * b_[row];
    }
    basis_[row] = col;
  }

 private:
  int rows_, cols_;
  std::vector<std::vector<double>> a_;
  std::vector<double> b_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution SolveSimplex(const LpProblem& problem,
                        const SimplexOptions& options) {
  const int n = problem.num_variables();
  // Materialize upper bounds as explicit <= constraints.
  std::vector<LpConstraint> rows(problem.constraints().begin(),
                                 problem.constraints().end());
  for (int i = 0; i < n; ++i) {
    const double ub = problem.upper_bounds()[i];
    if (std::isfinite(ub)) {
      rows.push_back(LpConstraint{{{i, 1.0}}, ConstraintSense::kLe, ub,
                                  "ub:" + problem.VariableName(i)});
    }
  }
  const int m = static_cast<int>(rows.size());

  // Count slack and artificial columns.
  int num_slack = 0, num_artificial = 0;
  for (auto& r : rows) {
    // Normalize to rhs >= 0.
    if (r.rhs < 0) {
      for (auto& t : r.terms) t.second = -t.second;
      r.rhs = -r.rhs;
      if (r.sense == ConstraintSense::kLe) {
        r.sense = ConstraintSense::kGe;
      } else if (r.sense == ConstraintSense::kGe) {
        r.sense = ConstraintSense::kLe;
      }
    }
    switch (r.sense) {
      case ConstraintSense::kLe:
        ++num_slack;
        break;
      case ConstraintSense::kGe:
        ++num_slack;  // surplus
        ++num_artificial;
        break;
      case ConstraintSense::kEq:
        ++num_artificial;
        break;
    }
  }

  const int cols = n + num_slack + num_artificial;
  Tableau t(m, cols);
  int slack_col = n;
  int art_col = n + num_slack;
  std::vector<int> artificial_cols;
  for (int i = 0; i < m; ++i) {
    const auto& r = rows[i];
    for (const auto& [var, coeff] : r.terms) t.a()[i][var] += coeff;
    t.b()[i] = r.rhs;
    switch (r.sense) {
      case ConstraintSense::kLe:
        t.a()[i][slack_col] = 1.0;
        t.basis()[i] = slack_col;
        ++slack_col;
        break;
      case ConstraintSense::kGe:
        t.a()[i][slack_col] = -1.0;
        ++slack_col;
        t.a()[i][art_col] = 1.0;
        t.basis()[i] = art_col;
        artificial_cols.push_back(art_col);
        ++art_col;
        break;
      case ConstraintSense::kEq:
        t.a()[i][art_col] = 1.0;
        t.basis()[i] = art_col;
        artificial_cols.push_back(art_col);
        ++art_col;
        break;
    }
  }

  LpSolution solution;

  // Phase 1: minimize the sum of artificial variables.
  if (!artificial_cols.empty()) {
    std::vector<double> phase1_cost(cols, 0.0);
    for (int c : artificial_cols) phase1_cost[c] = 1.0;
    if (!t.Minimize(phase1_cost, options.tolerance, options.max_iterations)) {
      solution.feasible = false;
      return solution;
    }
    double infeasibility = 0;
    for (int i = 0; i < m; ++i) {
      if (phase1_cost[t.basis()[i]] > 0) infeasibility += t.b()[i];
    }
    if (infeasibility > 1e-6) {
      solution.feasible = false;
      return solution;
    }
    // Drive any remaining artificial variables out of the basis.
    for (int i = 0; i < m; ++i) {
      if (phase1_cost[t.basis()[i]] > 0) {
        for (int j = 0; j < n + num_slack; ++j) {
          if (std::abs(t.a()[i][j]) > options.tolerance) {
            t.Pivot(i, j);
            break;
          }
        }
      }
    }
  }

  // Phase 2: minimize -objective (i.e. maximize objective). Artificial
  // columns get prohibitive cost so they stay out of the basis.
  std::vector<double> phase2_cost(cols, 0.0);
  for (int i = 0; i < n; ++i) phase2_cost[i] = -problem.objective()[i];
  for (int c : artificial_cols) phase2_cost[c] = 1e12;
  if (!t.Minimize(phase2_cost, options.tolerance, options.max_iterations)) {
    solution.feasible = true;
    solution.bounded = false;
    return solution;
  }

  solution.feasible = true;
  solution.x.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    if (t.basis()[i] < n) solution.x[t.basis()[i]] = std::max(0.0, t.b()[i]);
  }
  solution.objective = 0;
  for (int i = 0; i < n; ++i) {
    solution.objective += problem.objective()[i] * solution.x[i];
  }
  return solution;
}

}  // namespace plumber
