// Closed-form solver for Plumber's max-min core allocation (§4.3).
//
//   maximize  X = min_i (theta_i * R_i)
//   s.t.      sum_i theta_i <= num_cores
//             0 <= theta_i, and theta_i <= 1 for sequential operations
//
// At the optimum every unsaturated stage runs at the same aggregate rate
// X, so theta_i = X / R_i (water filling); sequential stages cap X at
// R_i. Used both directly and as an oracle cross-checking the simplex
// encoding of the same LP.
#pragma once

#include <string>
#include <vector>

namespace plumber {

struct MaxMinStage {
  std::string name;
  double rate_per_core = 0;  // R_i, minibatches/sec/core; <=0 means "free"
  bool sequential = false;   // theta_i <= 1
};

struct MaxMinSolution {
  double throughput = 0;            // X
  std::vector<double> theta;        // cores per stage
  double cores_used = 0;
  // Index of the stage that binds the optimum (sequential cap or the
  // core budget split); -1 if the problem is degenerate.
  int bottleneck = -1;
  bool core_limited = false;        // true if sum theta == num_cores binds
};

MaxMinSolution SolveMaxMin(const std::vector<MaxMinStage>& stages,
                           double num_cores);

}  // namespace plumber
