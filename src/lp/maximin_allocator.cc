#include "src/lp/maximin_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace plumber {

MaxMinSolution SolveMaxMin(const std::vector<MaxMinStage>& stages,
                           double num_cores) {
  MaxMinSolution out;
  out.theta.assign(stages.size(), 0.0);
  if (stages.empty() || num_cores <= 0) return out;

  // Stages with non-positive rate consume no cores and impose no bound
  // (e.g. already-cached subtrees with zero steady-state cost).
  double inv_rate_sum = 0;
  double seq_cap = std::numeric_limits<double>::infinity();
  int seq_cap_idx = -1;
  for (size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    if (s.rate_per_core <= 0) continue;
    inv_rate_sum += 1.0 / s.rate_per_core;
    if (s.sequential && s.rate_per_core < seq_cap) {
      seq_cap = s.rate_per_core;
      seq_cap_idx = static_cast<int>(i);
    }
  }
  if (inv_rate_sum <= 0) return out;

  const double core_limited_x = num_cores / inv_rate_sum;
  double x = core_limited_x;
  out.core_limited = true;
  out.bottleneck = -1;
  if (seq_cap < x) {
    x = seq_cap;
    out.core_limited = false;
    out.bottleneck = seq_cap_idx;
  }
  out.throughput = x;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].rate_per_core > 0) {
      out.theta[i] = x / stages[i].rate_per_core;
      out.cores_used += out.theta[i];
    }
  }
  if (out.core_limited) {
    // The binding stage under the core budget is the slowest per-core
    // stage (largest theta).
    double max_theta = -1;
    for (size_t i = 0; i < stages.size(); ++i) {
      if (out.theta[i] > max_theta) {
        max_theta = out.theta[i];
        out.bottleneck = static_cast<int>(i);
      }
    }
  }
  return out;
}

}  // namespace plumber
