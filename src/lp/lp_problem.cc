#include "src/lp/lp_problem.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace plumber {

int LpProblem::AddVariable(std::string name, double objective_coeff,
                           double upper) {
  assert(upper >= 0);
  names_.push_back(std::move(name));
  objective_.push_back(objective_coeff);
  upper_.push_back(upper);
  return static_cast<int>(names_.size()) - 1;
}

void LpProblem::AddConstraint(std::vector<std::pair<int, double>> terms,
                              ConstraintSense sense, double rhs,
                              std::string name) {
  for (const auto& [var, coeff] : terms) {
    assert(var >= 0 && var < num_variables());
    (void)coeff;
  }
  constraints_.push_back(
      LpConstraint{std::move(terms), sense, rhs, std::move(name)});
}

void LpProblem::SetObjectiveCoeff(int var, double coeff) {
  assert(var >= 0 && var < num_variables());
  objective_[var] = coeff;
}

bool LpProblem::IsFeasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) return false;
  for (int i = 0; i < num_variables(); ++i) {
    if (x[i] < -tol || x[i] > upper_[i] + tol) return false;
  }
  for (const auto& c : constraints_) {
    double lhs = 0;
    for (const auto& [var, coeff] : c.terms) lhs += coeff * x[var];
    switch (c.sense) {
      case ConstraintSense::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case ConstraintSense::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case ConstraintSense::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string LpProblem::ToString() const {
  std::ostringstream os;
  os << "maximize ";
  for (int i = 0; i < num_variables(); ++i) {
    if (i) os << " + ";
    os << objective_[i] << "*" << names_[i];
  }
  os << "\nsubject to:\n";
  for (const auto& c : constraints_) {
    os << "  ";
    for (size_t t = 0; t < c.terms.size(); ++t) {
      if (t) os << " + ";
      os << c.terms[t].second << "*" << names_[c.terms[t].first];
    }
    switch (c.sense) {
      case ConstraintSense::kLe:
        os << " <= ";
        break;
      case ConstraintSense::kGe:
        os << " >= ";
        break;
      case ConstraintSense::kEq:
        os << " == ";
        break;
    }
    os << c.rhs;
    if (!c.name.empty()) os << "   (" << c.name << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace plumber
