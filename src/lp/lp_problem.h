// Linear program builder and solution types.
//
// Problems are expressed as: maximize c^T x subject to linear
// constraints over non-negative variables with optional upper bounds.
// This is the substrate for Plumber's core resource-allocation LP
// (paper §4.3); the original uses cvxpy, we solve with a dense
// two-phase simplex (simplex.h).
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace plumber {

enum class ConstraintSense { kLe, kGe, kEq };

struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  // (variable index, coeff)
  ConstraintSense sense = ConstraintSense::kLe;
  double rhs = 0;
  std::string name;
};

struct LpSolution {
  bool feasible = false;
  bool bounded = true;
  double objective = 0;
  std::vector<double> x;
};

class LpProblem {
 public:
  // Adds a variable with bounds [0, upper]; returns its index.
  int AddVariable(std::string name, double objective_coeff = 0,
                  double upper = std::numeric_limits<double>::infinity());

  void AddConstraint(std::vector<std::pair<int, double>> terms,
                     ConstraintSense sense, double rhs,
                     std::string name = "");

  void SetObjectiveCoeff(int var, double coeff);

  int num_variables() const { return static_cast<int>(names_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const std::string& VariableName(int i) const { return names_[i]; }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }
  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& upper_bounds() const { return upper_; }

  // Checks x against all constraints and bounds within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<double> objective_;
  std::vector<double> upper_;
  std::vector<LpConstraint> constraints_;
};

}  // namespace plumber
