// Dense two-phase simplex solver.
//
// Solves LpProblem instances exactly (up to floating-point tolerance).
// Sized for Plumber's use: tens of variables and constraints, where a
// dense tableau with Bland's anti-cycling rule is simple and robust.
#pragma once

#include "src/lp/lp_problem.h"

namespace plumber {

struct SimplexOptions {
  double tolerance = 1e-9;
  int max_iterations = 10000;
};

// Maximizes the problem's objective. On infeasibility returns
// feasible=false; on unboundedness returns bounded=false.
LpSolution SolveSimplex(const LpProblem& problem,
                        const SimplexOptions& options = {});

}  // namespace plumber
