#!/usr/bin/env python3
"""CI performance-regression gate.

Compares the BENCH_*.json files produced by scripts/run_bench_json.sh
(via the `bench_json` CMake target) against committed baselines under
bench/baselines/, prints a per-metric delta table, and exits non-zero
if any gated metric dropped by more than the threshold (default 15%).

Two JSON shapes are understood:
  * Google Benchmark native output (bench_micro_*): every benchmark
    entry with an items_per_second counter becomes a metric.
  * The plain-bench wrapper written by run_bench_json.sh: the "metrics"
    object (scraped from BENCH_METRIC stdout lines) is used verbatim.

Metric direction is encoded in the name suffix:
  * `*_latency_s` — lower is better; gated on *increases*, with a
    looser band (2x the throughput threshold) because end-to-end
    latency tails are noisier than throughput means.
  * `*_count` — context only (e.g. fleet.steal_count): printed in the
    delta table but never gated; the bench's own exit code asserts the
    semantic property (count > 0).
  * everything else — higher-is-better throughput or ratio, gated on
    drops.

Two portability mechanisms, by what differs between the hosts:

* Different core count (google-benchmark context.num_cpus / wrapper
  host_cores): parallel throughputs scale with cores, so no scalar
  normalizer applies — only relative metrics (*_rel) are gated.
  Re-bless baselines from the CI host class to gate absolutes.
* Same core count, google-benchmark micro benches only, both runs
  carrying the calibrated spin rate (BM_BurnCalibration's
  spin_rounds_per_ns counter), rates differing by more than the
  calibration noise band: absolute throughputs are gated through
  derived *_norm_rel metrics (rate / spin rate), which cancel
  clock-speed differences between dev- and CI-class hosts of the same
  shape. The raw absolutes still print in the delta table but do not
  gate. Rates within the noise band mean the same host class, where
  raw gating is valid and noise-free. Wrapper benches (fig10,
  ablation) are deliberately NOT normalized: their UDF cost executes
  as timed occupancy of a modeled machine (kTimed, see
  src/pipeline/udf.h), so their rates are largely host-clock-
  independent and dividing by the spin rate would introduce the very
  skew it removes elsewhere; they record host_spin_rounds_per_ns for
  context only.

Usage:
  check_bench_regression.py [--baseline-dir bench/baselines]
                            [--current-dir build] [--threshold 0.15]
                            [--benches bench_micro_engine,...] [--update]

Refreshing baselines (after an intentional perf change, on the same
class of machine that CI uses):
  cmake --build build --target bench_json
  python3 scripts/check_bench_regression.py --update
  git add bench/baselines && git commit

Environment: BENCH_REGRESSION_THRESHOLD overrides --threshold.
"""

import argparse
import json
import os
import shutil
import sys

DEFAULT_BENCHES = [
    "bench_micro_engine",
    "bench_fig10_end_to_end",
    "bench_ablation_passes",
    "bench_multi_tenant",
    "bench_fleet_replay",
    "bench_fig3_fleet_latency",
    "bench_fig4_fleet_utilization",
    "bench_obs8_cache",
    "bench_network",
]

# Wrapper-bench metric carrying the host's calibrated spin rate; it is
# a speed signal, not a throughput, so it is never gated itself.
HOST_SPEED_METRIC = "host_spin_rounds_per_ns"

# Spin rates within this fraction of each other are "the same host
# class": the calibration jitters a few percent between runs on the
# identical machine, so normalizing inside the band would add noise to
# every gated delta instead of removing a clock difference.
SPEED_NOISE_BAND = 0.10


def add_derived_ratios(metrics):
    """Adds <family>/<arg>_vs_1_rel ratio metrics for every benchmark
    family that has an arg-1 variant (e.g. BM_EngineBatchCheapUdf/8/64
    vs .../8/1). Ratios of same-host rates are portable across machine
    shapes, so they stay gated when absolute throughputs are not —
    without them a cross-host run would not gate the micro benches at
    all. Derived identically for baseline and current."""
    families = {}
    for name, rate in metrics.items():
        parts = name.split("/")
        # Drop google-benchmark decorations (e.g. trailing "real_time").
        while parts and not parts[-1].lstrip("-").isdigit():
            parts.pop()
        if not parts:
            continue
        families.setdefault("/".join(parts[:-1]), {})[parts[-1]] = rate
    for family, variants in families.items():
        base = variants.get("1")
        if not base or base <= 0:
            continue
        for arg, rate in variants.items():
            if arg != "1":
                metrics[f"{family}/{arg}_vs_1_rel"] = rate / base


def add_sync_gap(metrics):
    """Adds micro_engine.sync_gap_rel: the batched parallel engine's
    throughput as a fraction of the single-thread no-channel bound
    (BM_EngineNoSyncBound). 1.0 would mean the data plane's
    synchronization costs nothing; the gated ratio keeps the gap from
    silently widening. Derived identically for baseline and current."""
    engine = bound = None
    for name, rate in metrics.items():
        if name.endswith("_rel"):
            continue  # derived ratios, not raw rates
        if name.startswith("BM_EngineBatchCheapUdf/8/64"):
            engine = rate
        elif name.startswith("BM_EngineNoSyncBound/"):
            bound = rate
    if engine and bound and bound > 0:
        metrics["micro_engine.sync_gap_rel"] = engine / bound


def load_metrics(path):
    """Returns ({metric_name: value}, host_cores or None, host_speed or
    None) for one BENCH_*.json file. host_speed is the calibrated spin
    rate (rounds/ns) — only returned for google-benchmark files, whose
    workloads burn real CPU and therefore scale with it; wrapper-bench
    rates are kTimed-simulated (host-clock-independent), so their
    recorded spin rate is context, not a normalizer."""
    with open(path) as f:
        data = json.load(f)
    metrics = {}
    cores = None
    speed = None
    if isinstance(data, dict) and "benchmarks" in data:  # google-benchmark
        cores = data.get("context", {}).get("num_cpus")
        for bench in data["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            # Custom counters land as top-level keys of the entry.
            if bench["name"].startswith("BM_BurnCalibration"):
                if bench.get("spin_rounds_per_ns"):
                    speed = float(bench["spin_rounds_per_ns"])
            rate = bench.get("items_per_second")
            if rate:
                metrics[bench["name"]] = float(rate)
        add_derived_ratios(metrics)
        add_sync_gap(metrics)
    elif isinstance(data, dict):
        cores = data.get("host_cores")
        for name, value in data.get("metrics", {}).items():
            if name == HOST_SPEED_METRIC:
                continue  # context only, never gated or normalized by
            metrics[name] = float(value)
    return metrics, cores, speed


def add_speed_normalized(base, cur, base_speed, cur_speed):
    """Adds <name>_norm_rel = value / host_speed for every absolute
    metric present in both runs, and returns the set of raw names that
    were normalized (the gate skips those in favor of their derived
    twins). Rate-per-spin-round cancels clock-speed differences between
    same-shape hosts; it does NOT correct for core-count differences
    (parallel throughputs scale with cores), so callers only invoke
    this when the two runs' core counts match."""
    normalized = set()
    for name in list(base):
        if (is_portable(name) or metric_kind(name) != "throughput"
                or name not in cur):
            continue
        base[f"{name}_norm_rel"] = base[name] / base_speed
        cur[f"{name}_norm_rel"] = cur[name] / cur_speed
        normalized.add(name)
    return normalized


def is_portable(name):
    """Relative (ratio) metrics compare across machine shapes; absolute
    throughputs only compare between same-core-count hosts."""
    return name.endswith("_rel")


def metric_kind(name):
    """Gating direction from the metric-name suffix: "latency" gates on
    increases, "context" never gates, "throughput" gates on drops."""
    if name.endswith("_count"):
        return "context"
    if name.endswith("_latency_s"):
        return "latency"
    return "throughput"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default="build")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.15")),
        help="max tolerated fractional throughput drop (default 0.15)")
    parser.add_argument(
        "--benches",
        default=",".join(DEFAULT_BENCHES),
        help="comma-separated bench names to gate")
    parser.add_argument(
        "--update",
        action="store_true",
        help="bless the current results as the new baselines")
    args = parser.parse_args()

    benches = [b for b in args.benches.split(",") if b]

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        blessed = 0
        for bench in benches:
            current = os.path.join(args.current_dir, f"BENCH_{bench}.json")
            if not os.path.exists(current):
                print(f"UPDATE skip {bench}: {current} not found")
                continue
            shutil.copy(current, os.path.join(args.baseline_dir,
                                              f"BENCH_{bench}.json"))
            print(f"UPDATE {bench}: blessed {current}")
            blessed += 1
        return 0 if blessed else 1

    rows = []  # (metric, baseline, current, delta or None)
    failures = []
    warnings = []
    missing_current = []
    for bench in benches:
        base_path = os.path.join(args.baseline_dir, f"BENCH_{bench}.json")
        cur_path = os.path.join(args.current_dir, f"BENCH_{bench}.json")
        if not os.path.exists(base_path):
            print(f"NOTE {bench}: no committed baseline ({base_path}); "
                  "skipping (bless one with --update)")
            continue
        if not os.path.exists(cur_path):
            missing_current.append(bench)
            continue
        base, base_cores, base_speed = load_metrics(base_path)
        cur, cur_cores, cur_speed = load_metrics(cur_path)
        # Baselines from a different machine shape: absolute throughputs
        # are incomparable (parallel stages scale with cores; no scalar
        # normalizer fixes that), so gate only the relative (ratio)
        # metrics until someone re-blesses baselines from this host
        # class. For same-shape hosts with a speed signal in both runs,
        # gate absolutes through their spin-rate-normalized twins so a
        # slower-clocked CI host doesn't fail on dev-host baselines.
        cross_host = (base_cores is not None and cur_cores is not None
                      and base_cores != cur_cores)
        ungated = set()
        if cross_host:
            skipped = [n for n in base if not is_portable(n)]
            if skipped:
                print(f"NOTE {bench}: baseline from a {base_cores}-core "
                      f"host, current from {cur_cores} cores; gating only "
                      f"relative metrics ({len(skipped)} absolute metrics "
                      "not compared — re-bless baselines on this host "
                      "class to gate them)")
        elif (base_speed and cur_speed
              and abs(cur_speed - base_speed) > SPEED_NOISE_BAND * base_speed):
            # Only switch to normalized gating for a genuine clock-class
            # difference: the spin calibration itself jitters a few
            # percent between runs on the identical host, and dividing
            # by it would inject that noise into every gated delta.
            # Within the band, raw gating is both valid and noise-free.
            ungated = add_speed_normalized(base, cur, base_speed, cur_speed)
            if ungated:
                print(f"NOTE {bench}: host spin rate differs from the "
                      f"baseline's ({base_speed:.4g} vs {cur_speed:.4g} "
                      f"rounds/ns); gating {len(ungated)} absolute metrics "
                      "through their spin-rate-normalized *_norm_rel "
                      "twins (raw values shown, not gated)")
        for name in sorted(base):
            if cross_host and not is_portable(name):
                continue
            if name not in cur:
                rows.append((f"{bench}:{name}", base[name], None, None, ""))
                # A different machine shape can legitimately drop whole
                # configs (e.g. the half-core fig10 run on a 1-core
                # host), so a missing metric is a warning, not a
                # failure; crashed/missing benches fail above.
                warnings.append(f"{bench}:{name} missing from current run")
                continue
            if base[name] <= 0:
                continue
            delta = (cur[name] - base[name]) / base[name]
            kind = metric_kind(name)
            gated = name not in ungated and kind != "context"
            # Latency gates on increases with a looser band (tails are
            # noisier than throughput means); throughput gates on drops.
            if kind == "latency":
                regressed = delta > 2 * args.threshold
                verb = "rose"
            else:
                regressed = delta < -args.threshold
                verb = "dropped"
            flag = ""
            if kind == "context":
                flag = "  (context)"
            elif regressed:
                flag = "  <-- REGRESSION" if gated else "  (not gated)"
            rows.append((f"{bench}:{name}", base[name], cur[name], delta,
                         flag))
            if gated and regressed:
                failures.append(
                    f"{bench}:{name} {verb} {abs(delta):.1%} "
                    f"({base[name]:.4g} -> {cur[name]:.4g})")
        for name in sorted(set(cur) - set(base)):
            rows.append((f"{bench}:{name}", None, cur[name], None, ""))
            # A metric the current build emits but the baseline lacks
            # means the baseline predates the benchmark — an ungated
            # metric is a silent hole in the gate, so fail until it is
            # blessed. Cross-host runs legitimately emit extra configs,
            # so there it is only a warning.
            msg = (f"{bench}:{name} emitted by the current run but "
                   f"missing from the committed baseline — re-bless with "
                   f"--update to start gating it")
            if cross_host:
                warnings.append(msg)
            else:
                failures.append(msg)

    if rows:
        name_w = max(len(r[0]) for r in rows)
        fmt = lambda v: f"{v:14.4g}" if v is not None else f"{'-':>14}"
        print(f"\n{'metric':<{name_w}} {'baseline':>14} {'current':>14} "
              f"{'delta':>8}")
        for name, base, cur, delta, flag in rows:
            d = f"{delta:+8.1%}" if delta is not None else f"{'-':>8}"
            print(f"{name:<{name_w}} {fmt(base)} {fmt(cur)} {d}{flag}")
        print()

    for bench in missing_current:
        failures.append(
            f"{bench}: BENCH_{bench}.json missing from {args.current_dir} "
            "(bench not built or crashed)")

    for w in warnings:
        print(f"WARN: {w}")
    if failures:
        print(f"FAIL: {len(failures)} gate failure(s) "
              f"(threshold {args.threshold:.0%}):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"OK: no gated metric regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
