#!/usr/bin/env bash
# Bench harness driver: runs selected bench binaries and writes
# machine-readable BENCH_<name>.json files (plus BENCH_summary.json) so
# the perf trajectory accumulates from PR to PR.
#
# Usage: run_bench_json.sh <bin_dir> <out_dir> <bench_name>...
#
# bench_micro_* binaries are Google Benchmark programs and emit native
# JSON; plain-main benches are timed and wrapped in a small JSON record.
# Plain benches may additionally print "BENCH_METRIC <name> <value>"
# lines (higher is better) to stdout; those are scraped into the JSON
# record's "metrics" object for scripts/check_bench_regression.py.
#
# A crashing bench exits this script non-zero and leaves no partial
# BENCH_<name>.json behind (the .log keeps the evidence), so CI can
# never mistake a crash for an empty-but-valid benchmark result.
set -euo pipefail

if [ $# -lt 3 ]; then
  echo "usage: $0 <bin_dir> <out_dir> <bench_name>..." >&2
  exit 2
fi

bin_dir=$1
out_dir=$2
shift 2

now_s() { date +%s.%N; }
elapsed() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'; }
host_cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)

entries=""
overall=0
for name in "$@"; do
  bin="$bin_dir/$name"
  if [ ! -x "$bin" ]; then
    echo "SKIP $name: not built" >&2
    continue
  fi
  out="$out_dir/BENCH_${name}.json"
  log="$out_dir/BENCH_${name}.log"
  start=$(now_s)
  status=0
  case "$name" in
    bench_micro_*)
      "$bin" --benchmark_format=json --benchmark_out="$out" \
        >"$log" 2>&1 || status=$?
      ;;
    *)
      "$bin" >"$log" 2>&1 || status=$?
      ;;
  esac
  end=$(now_s)
  wall=$(elapsed "$start" "$end")
  if [ "$status" -ne 0 ]; then
    # Drop any partial artifact: a crashed bench must fail loudly, not
    # upload an empty/truncated JSON that later compares as "fine".
    rm -f "$out"
    overall=1
  else
    case "$name" in
      bench_micro_*) ;;  # native JSON already written
      *)
        # Scrape "BENCH_METRIC <name> <value>" lines into a metrics map.
        # host_cores lets the regression gate recognize baselines from a
        # different machine shape and gate only portable metrics.
        metrics=$(awk '/^BENCH_METRIC [^ ]+ [0-9.eE+-]+$/ {
            printf "%s\"%s\":%s", sep, $2, $3; sep="," }' "$log")
        printf '{"bench":"%s","exit_code":%d,"wall_seconds":%s,"host_cores":%s,"metrics":{%s}}\n' \
          "$name" "$status" "$wall" "$host_cores" "$metrics" > "$out"
        ;;
    esac
  fi
  entries="${entries:+$entries,}{\"bench\":\"$name\",\"exit_code\":$status,\"wall_seconds\":$wall}"
  echo "BENCH $name: exit=$status wall=${wall}s -> $out"
done

printf '{"host_cores":%s,"benches":[%s]}\n' "$host_cores" "$entries" \
  > "$out_dir/BENCH_summary.json"
echo "Wrote $out_dir/BENCH_summary.json"
exit "$overall"
