#!/usr/bin/env bash
# Bench harness driver: runs selected bench binaries and writes
# machine-readable BENCH_<name>.json files (plus BENCH_summary.json) so
# the perf trajectory accumulates from PR to PR.
#
# Usage: run_bench_json.sh <bin_dir> <out_dir> <bench_name>...
#
# bench_micro_* binaries are Google Benchmark programs and emit native
# JSON; plain-main benches are timed and wrapped in a small JSON record.
set -u

if [ $# -lt 3 ]; then
  echo "usage: $0 <bin_dir> <out_dir> <bench_name>..." >&2
  exit 2
fi

bin_dir=$1
out_dir=$2
shift 2

now_s() { date +%s.%N; }
elapsed() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", b - a }'; }

entries=""
overall=0
for name in "$@"; do
  bin="$bin_dir/$name"
  if [ ! -x "$bin" ]; then
    echo "SKIP $name: not built" >&2
    continue
  fi
  out="$out_dir/BENCH_${name}.json"
  start=$(now_s)
  case "$name" in
    bench_micro_*)
      "$bin" --benchmark_format=json --benchmark_out="$out" \
        >"$out_dir/BENCH_${name}.log" 2>&1
      status=$?
      ;;
    *)
      "$bin" >"$out_dir/BENCH_${name}.log" 2>&1
      status=$?
      ;;
  esac
  end=$(now_s)
  wall=$(elapsed "$start" "$end")
  case "$name" in
    bench_micro_*) ;;  # native JSON already written
    *)
      printf '{"bench":"%s","exit_code":%d,"wall_seconds":%s}\n' \
        "$name" "$status" "$wall" > "$out"
      ;;
  esac
  entries="${entries:+$entries,}{\"bench\":\"$name\",\"exit_code\":$status,\"wall_seconds\":$wall}"
  [ "$status" -ne 0 ] && overall=1
  echo "BENCH $name: exit=$status wall=${wall}s -> $out"
done

printf '{"host_cores":%s,"benches":[%s]}\n' "$(nproc)" "$entries" \
  > "$out_dir/BENCH_summary.json"
echo "Wrote $out_dir/BENCH_summary.json"
exit "$overall"
