#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md and docs/*.md (plus any extra files given on the
command line) for markdown links and inline `path` references of the
form [text](target). External targets (http/https/mailto) and pure
in-page anchors (#...) are ignored; everything else is resolved
relative to the containing file and must exist in the working tree.

Exit code 0 = all links resolve, 1 = at least one dead link (listed).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def check_file(path: Path, repo_root: Path) -> list:
    dead = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            # Strip a trailing anchor: docs/foo.md#section checks foo.md.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            try:
                resolved.relative_to(repo_root)
            except ValueError:
                dead.append((path, lineno, target, "escapes the repository"))
                continue
            if not resolved.exists():
                dead.append((path, lineno, target, "does not exist"))
    return dead


def main(argv: list) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    files = [repo_root / "README.md"]
    files.extend(sorted((repo_root / "docs").glob("*.md")))
    files.extend(Path(a).resolve() for a in argv[1:])
    missing_inputs = [f for f in files if not f.exists()]
    if missing_inputs:
        for f in missing_inputs:
            print(f"error: input file {f} not found")
        return 1
    dead = []
    for f in files:
        dead.extend(check_file(f, repo_root))
    if dead:
        print("dead links:")
        for path, lineno, target, why in dead:
            rel = path.relative_to(repo_root)
            print(f"  {rel}:{lineno}: ({target}) {why}")
        return 1
    print(f"doc links OK: {len(files)} files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
