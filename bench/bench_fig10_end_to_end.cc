// Reproduces Fig. 10 (relative speedups) and Fig. 12 (absolute
// throughputs) of end-to-end "training" on the Setup C consumer:
// Naive vs AUTOTUNE vs HEURISTIC vs Plumber across the MLPerf-style
// workloads, plus the MultiBoxSSD(48-core) appendix variant.
//
// Expected shape (paper): Plumber >= strong baselines everywhere except
// RCNN (where its conservative allocation can lag slightly); caching
// drives the large wins (ResNet18/ResNetLinear/MultiBoxSSD/
// TransformerSmall); Transformer and GNMT tie at the model cap.
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/util/busy_work.h"
#include "src/workloads/datagen.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

struct Row {
  std::string workload;
  double naive = 0, autotune = 0, heuristic = 0, plumber = 0;
  std::string cache_node;
};

Row RunWorkload(const std::string& name, int num_cores) {
  Row row;
  row.workload = name;
  auto workload = std::move(MakeWorkload(name)).value();
  MachineSpec machine = MachineSpec::SetupC(kMemoryScale);
  machine.num_cores = num_cores;
  const double step = workload.ModelStepSeconds();
  // The warmup window must cover at least one full epoch of the scaled
  // dataset so injected caches are warm when measurement starts (the
  // paper evaluates over 5 epochs, so cache fill is amortized away).
  const double kMeasure = 0.8, kWarmup = 1.6;

  // Each policy gets a fresh session (fresh device + filesystem: fresh
  // page of I/O accounting, cold caches).
  auto measure = [&](const GraphDef& graph) {
    Session session = MakeWorkloadSession(machine, workload.storage);
    return MeasureRate(session, graph, kMeasure, step, kWarmup);
  };

  row.naive = measure(NaiveConfiguration(workload.graph));
  row.heuristic =
      measure(HeuristicConfiguration(workload.graph, machine.num_cores));

  {
    // AUTOTUNE: trace the naive configuration, hill-climb, measure.
    Session session = MakeWorkloadSession(machine, workload.storage);
    auto model = std::move(session.FromGraph(
                                      NaiveConfiguration(workload.graph))
                               .Diagnose(0.25))
                     .value();
    AutotuneOptions aopts;
    aopts.max_parallelism = machine.num_cores;
    auto autotuned =
        std::move(AutotuneConfiguration(workload.graph, model, aopts))
            .value();
    row.autotune = measure(autotuned.graph);
  }

  {
    // Plumber: full optimizer (LP + prefetch + cache) over the
    // pick_best variants.
    Session session = MakeWorkloadSession(machine, workload.storage);
    OptimizeOptions oopts;
    oopts.trace_seconds = 0.25;
    oopts.evaluate_warmup_seconds = 0.8;
    oopts.lp_options.disk_bandwidth = workload.storage.max_bandwidth;
    auto result = workload.variants.size() > 1
                      ? session.OptimizeBest(workload.variants, oopts)
                      : session.FromGraph(workload.graph).Optimize(oopts);
    if (result.ok()) {
      row.plumber = measure(std::move(result->Graph()).value());
      row.cache_node = result->cache.feasible ? result->cache.node : "-";
    }
  }
  return row;
}

}  // namespace

int main() {
  // Host speed signal for cross-host baseline normalization (see
  // scripts/check_bench_regression.py; excluded from gating itself).
  std::printf("BENCH_METRIC host_spin_rounds_per_ns %.6f\n",
              SpinRoundsPerNano());
  PrintHeader("Figure 10 / Figure 12: end-to-end on Setup C (TPUv3-8 host)");
  // Setup C has 96 cores; we emulate it with the host's core budget so
  // the HEURISTIC policy ("parallelism = machine cores") means the same
  // thing it meant on the paper's testbed instead of oversubscribing
  // the host into thread-thrash the real 96-core machine never saw.
  // All four tuners see the same budget, so the comparison holds.
  const int kSetupCCores =
      std::min(96, static_cast<int>(std::thread::hardware_concurrency()));
  const int kHalfCores = std::max(1, kSetupCCores / 2);
  const std::vector<std::pair<std::string, int>> configs = {
      {"resnet18", kSetupCCores},     {"resnet_linear", kSetupCCores},
      {"multibox_ssd", kSetupCCores}, {"multibox_ssd", kHalfCores},
      {"rcnn", kSetupCCores},         {"transformer", kSetupCCores},
      {"transformer_small", kSetupCCores},
      {"gnmt", kSetupCCores},         {"resnet50", kSetupCCores},
  };
  Table rel({"workload", "naive", "autotune", "heuristic", "plumber",
             "plumber cache at"});
  Table abs({"workload", "naive mb/s", "autotune", "heuristic", "plumber"});
  std::set<std::string> emitted_metrics;
  for (const auto& [name, cores] : configs) {
    // A reduced-core config (the MultiBoxSSD(48) appendix run) disables
    // the extra cores at the OS level, not just in the tuners' budget.
    std::unique_ptr<ScopedCpuAffinity> affinity;
    if (cores < kSetupCCores) {
      affinity = std::make_unique<ScopedCpuAffinity>(cores);
    }
    const Row row = RunWorkload(name, cores);
    affinity.reset();
    const std::string label =
        cores == kSetupCCores ? row.workload : row.workload + "(48)";
    const double base = row.naive > 0 ? row.naive : 1;
    // Machine-readable metrics (higher is better) scraped by
    // scripts/run_bench_json.sh into BENCH_*.json for the CI
    // perf-regression gate. The relative metric is the one worth
    // gating across hosts; absolute rates are recorded for context.
    // On a 1-core host the full- and half-core configs collapse to the
    // same label; emit each label once so the JSON has unique keys.
    if (emitted_metrics.insert(label).second) {
      std::printf("BENCH_METRIC fig10.%s.naive_mbps %.4f\n", label.c_str(),
                  row.naive);
      std::printf("BENCH_METRIC fig10.%s.plumber_mbps %.4f\n", label.c_str(),
                  row.plumber);
      std::printf("BENCH_METRIC fig10.%s.plumber_rel %.4f\n", label.c_str(),
                  row.plumber / base);
    }
    rel.AddRow({label, "1.0", Table::Num(row.autotune / base, 1),
                Table::Num(row.heuristic / base, 1),
                Table::Num(row.plumber / base, 1), row.cache_node});
    abs.AddRow({label, Table::Num(row.naive, 1), Table::Num(row.autotune, 1),
                Table::Num(row.heuristic, 1), Table::Num(row.plumber, 1)});
    std::fflush(stdout);
  }
  std::printf("\n-- relative rate (Fig. 10) --\n");
  rel.Print();
  std::printf("\n-- absolute minibatches/sec (Fig. 12) --\n");
  abs.Print();
  std::printf(
      "\nPaper reference (relative): ResNet18 39.2x, ResNetLinear 47.6x,\n"
      "MultiBoxSSD 23.6x, RCNN 4.8x (slightly below AUTOTUNE's 5.9x),\n"
      "Transformer 1.0x, TransformerSmall 12.3x, GNMT 1.0x for Plumber.\n");
  return 0;
}
