// Reproduces Fig. 4: CPU vs memory-bandwidth utilization of jobs,
// bucketed by pipeline latency. The paper's claim (Observation 2): jobs
// with latency >= 100ms average ~11% CPU and ~18% memory bandwidth, so
// input bottlenecks are rooted in software, not hardware saturation.
#include <cstdio>

#include "src/fleet/fleet_sim.h"
#include "src/util/stats.h"
#include "src/util/table.h"

int main() {
  using namespace plumber;
  std::printf("==== Figure 4: fleet utilization clusters ====\n");
  FleetModelOptions options;
  options.num_jobs = 200000;
  const auto jobs = SimulateFleet(options);

  struct Band {
    const char* label;
    double lo, hi;
    RunningStat cpu, membw;
    int64_t count = 0;
  };
  std::vector<Band> bands = {
      {"< 50us (not input-bound)", 0, 50e-6, {}, {}, 0},
      {"50us - 100ms (software bottleneck)", 50e-6, 100e-3, {}, {}, 0},
      {">= 100ms (severely input-bound)", 100e-3, 1e9, {}, {}, 0},
  };
  for (const auto& job : jobs) {
    for (auto& band : bands) {
      if (job.next_latency_s >= band.lo && job.next_latency_s < band.hi) {
        band.cpu.Add(job.cpu_utilization);
        band.membw.Add(job.membw_utilization);
        ++band.count;
      }
    }
  }
  Table table({"latency band", "jobs", "mean CPU util", "mean mem-bw util",
               "CPU p90"});
  for (auto& band : bands) {
    QuantileSketch q;
    for (const auto& job : jobs) {
      if (job.next_latency_s >= band.lo && job.next_latency_s < band.hi) {
        q.Add(job.cpu_utilization);
      }
    }
    table.AddRow({band.label, std::to_string(band.count),
                  Table::Num(band.cpu.mean(), 3),
                  Table::Num(band.membw.mean(), 3),
                  Table::Num(q.Quantile(0.9), 3)});
  }
  table.Print();
  std::printf(
      "\nPaper reference: jobs with >=100ms latency average ~11%% CPU and\n"
      "~18%% memory bandwidth; the majority of jobs do not saturate the "
      "host.\n");

  // Seeded simulation: deterministic, portable (_rel) metrics gating
  // the Observation-2 reproduction — the severely input-bound band
  // must stay far from hardware saturation.
  std::printf("BENCH_METRIC fleet.slow_band_cpu_util_rel %.4f\n",
              bands[2].cpu.mean());
  std::printf("BENCH_METRIC fleet.slow_band_membw_util_rel %.4f\n",
              bands[2].membw.mean());
  return 0;
}
