// Reproduces §5.2 (Observation 7): disk microbenchmarks.
//   1. Token-bucket bandwidth sweep on ResNet: Plumber converts the
//      traced bytes/minibatch into a predicted I/O-bound rate and the
//      prediction should track the observed rate until the compute
//      bound takes over (paper: within ~5-15%).
//   2. HDD (180MB/s) and NVMe (2GB/s) device models: predicted vs
//      observed bound per workload.
// Bandwidths are scaled by the dataset byte scale (see datagen.h).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/datagen.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

// Traces the workload once on unlimited storage to learn the I/O cost
// per minibatch and the CPU-bound rate.
struct WorkloadCosts {
  double disk_bytes_per_minibatch = 0;
  double cpu_bound_rate = 0;
};

WorkloadCosts LearnCosts(const std::string& name,
                         const MachineSpec& machine) {
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload(name)).value();
  const GraphDef tuned =
      HeuristicConfiguration(workload.graph, machine.num_cores);
  auto pipeline = std::move(Pipeline::Create(
                                tuned, env.MakePipelineOptions(
                                           machine.cpu_scale)))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = 0.3;
  topts.machine = machine;
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
  WorkloadCosts costs;
  costs.disk_bytes_per_minibatch = model.DiskBytesPerMinibatch();
  costs.cpu_bound_rate = model.observed_rate();
  return costs;
}

double MeasureAtBandwidth(const std::string& name,
                          const MachineSpec& machine, double bandwidth) {
  auto workload = std::move(MakeWorkload(name)).value();
  StorageDevice device(DeviceSpec::TokenBucketLimit(bandwidth));
  WorkloadEnv env(&device);
  const GraphDef tuned =
      HeuristicConfiguration(workload.graph, machine.num_cores);
  return MeasureRate(env, tuned, machine, 0.4, 0, 0, /*warmup=*/0.15);
}

void BandwidthSweep(const std::string& name) {
  const MachineSpec machine = MachineSpec::SetupA();
  PrintHeader("Obs. 7: token-bucket bandwidth sweep, " + name);
  const WorkloadCosts costs = LearnCosts(name, machine);
  std::printf("traced I/O cost: %.0f bytes/minibatch, CPU-bound ~%.1f mb/s\n",
              costs.disk_bytes_per_minibatch, costs.cpu_bound_rate);
  // Paper sweeps 50..300MB/s on full-size data; scaled by kByteScale
  // that is 0.5..3 MB/s.
  Table table({"bandwidth (scaled)", "predicted mb/s", "observed mb/s",
               "error"});
  for (double mbps : {0.5, 1.0, 1.5, 2.0, 3.0, 6.0}) {
    const double bw = mbps * 1e6;
    const double disk_bound = bw / costs.disk_bytes_per_minibatch;
    const double predicted = std::min(disk_bound, costs.cpu_bound_rate);
    const double observed = MeasureAtBandwidth(name, machine, bw);
    const double err =
        observed > 0 ? std::abs(predicted - observed) / observed : 0;
    table.AddRow({Table::Num(mbps, 1) + " MB/s", Table::Num(predicted, 1),
                  Table::Num(observed, 1),
                  Table::Num(100 * err, 0) + "%"});
  }
  table.Print();
}

void DevicePredictions() {
  const MachineSpec machine = MachineSpec::SetupB();
  PrintHeader("Obs. 7: HDD / NVMe device bounds (setup_b)");
  // Scaled devices: HDD 180MB/s -> 1.8MB/s, NVMe 2GB/s -> 20MB/s.
  Table table({"workload", "device", "predicted bound", "observed",
               "binding"});
  for (const std::string name : {"resnet18", "rcnn", "multibox_ssd"}) {
    const WorkloadCosts costs = LearnCosts(name, machine);
    for (const auto& [dev_name, bw] :
         std::vector<std::pair<std::string, double>>{{"hdd", 1.8e6},
                                                     {"nvme", 20e6}}) {
      const double disk_bound = bw / costs.disk_bytes_per_minibatch;
      const double predicted = std::min(disk_bound, costs.cpu_bound_rate);
      const double observed = MeasureAtBandwidth(name, machine, bw);
      table.AddRow({name, dev_name, Table::Num(predicted, 1),
                    Table::Num(observed, 1),
                    disk_bound < costs.cpu_bound_rate ? "disk" : "compute"});
    }
  }
  table.Print();
  std::printf(
      "\nPaper reference: ResNet HDD-bound within ~15%%; RCNN compute-bound\n"
      "on both devices; MultiBoxSSD HDD-bound within ~10%%, NVMe "
      "compute-bound.\n");
}

}  // namespace

int main() {
  BandwidthSweep("resnet18");
  BandwidthSweep("multibox_ssd");
  DevicePredictions();
  return 0;
}
