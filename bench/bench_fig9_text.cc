// Reproduces Fig. 9: Transformer and GNMT predictions on Setup A.
// Text pipelines have per-element costs so small that Iterator-model
// overhead dominates, so the LP (which only sees traced CPU work)
// overpredicts observed throughput by 2-8x; non-parallelizable stages
// (Filter for Transformer, ShuffleAndRepeat for GNMT) emerge as the
// ranked bottlenecks.
#include <cstdio>

#include "bench/bench_util.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

void RunWorkload(const std::string& name, int steps) {
  const MachineSpec machine = MachineSpec::SetupA();
  PrintHeader("Figure 9: " + name + " predictions (setup_a)");
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload(name)).value();
  const GraphDef naive = NaiveConfiguration(workload.graph);
  StepSeriesOptions options;
  options.steps = steps;
  options.machine = machine;
  options.measure_seconds = 0.15;
  auto tuner = MakePlumberStepTuner();
  const auto series = RunStepTuning(env, naive, tuner.get(), options);

  Table table({"step", "observed", "LP max", "local max", "autotune est",
               "LP/observed"});
  for (const auto& p : series) {
    table.AddRow({std::to_string(p.step), Table::Num(p.observed_rate),
                  Table::Num(p.lp_predicted), Table::Num(p.local_predicted),
                  Table::Num(p.autotune_predicted),
                  Table::Num(p.observed_rate > 0
                                 ? p.lp_predicted / p.observed_rate
                                 : 0)});
  }
  table.Print();

  // Report the final bottleneck according to Plumber's ranking (paper:
  // FilterDataset for Transformer, ShuffleAndRepeatDataset for GNMT —
  // stages Plumber cannot parallelize).
  auto pipeline = std::move(Pipeline::Create(
                                naive, env.MakePipelineOptions(
                                           machine.cpu_scale)))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = 0.2;
  topts.machine = machine;
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
  std::printf("highest-cost non-parallelizable stages:\n");
  for (const auto& node : model.nodes()) {
    if (!node.parallelizable && node.cpu_seconds > 1e-4) {
      std::printf("  %s (%s): %.1f us/element, %.3f cores\n",
                  node.name.c_str(), node.op.c_str(),
                  node.service_seconds * 1e6, node.observed_cores);
    }
  }
}

}  // namespace

int main() {
  RunWorkload("transformer", 12);
  RunWorkload("gnmt", 12);
  return 0;
}
