// Reproduces Fig. 8: RCNN on Setup A — convergence plus predictions.
// RCNN's heavy UDF is internally parallel (~3 cores per logical call),
// so thread over-allocation degrades performance and the LP's
// per-core-rate assumption overestimates peak (paper: up to ~4x), while
// AUTOTUNE's estimate swings with high variance.
#include <cstdio>

#include "bench/bench_util.h"

using namespace plumber;
using namespace plumber::bench;

int main() {
  const MachineSpec machine = MachineSpec::SetupA();
  PrintHeader("Figure 8: RCNN convergence + predictions (setup_a)");
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload("rcnn")).value();
  const GraphDef naive = NaiveConfiguration(workload.graph);

  const GraphDef heuristic =
      HeuristicConfiguration(workload.graph, machine.num_cores);
  const double heuristic_rate = MeasureRate(env, heuristic, machine, 0.4);

  StepSeriesOptions options;
  options.steps = 12;
  options.machine = machine;
  options.measure_seconds = 0.15;
  auto tuner = MakePlumberStepTuner();
  const auto series = RunStepTuning(env, naive, tuner.get(), options);

  Table table({"step", "observed", "LP max", "autotune est",
               "LP/observed"});
  for (const auto& p : series) {
    table.AddRow({std::to_string(p.step), Table::Num(p.observed_rate),
                  Table::Num(p.lp_predicted),
                  Table::Num(p.autotune_predicted),
                  Table::Num(p.observed_rate > 0
                                 ? p.lp_predicted / p.observed_rate
                                 : 0)});
  }
  table.Print();
  const auto& last = series.back();
  std::printf(
      "plumber final=%.2f mb/s, heuristic(all-cores)=%.2f mb/s\n"
      "LP overestimate factor at convergence: %.2f (paper: ~4x due to\n"
      "transparent UDF parallelism compounding with map parallelism)\n",
      last.observed_rate, heuristic_rate,
      last.observed_rate > 0 ? last.lp_predicted / last.observed_rate : 0.0);
  return 0;
}
