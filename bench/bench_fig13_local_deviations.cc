// Reproduces Fig. 13 (appendix C.2): local optimality of Plumber's
// per-step choice on MultiBoxSSD. At each optimization step we compare
// the throughput after Plumber's recommended +1 against three random
// one-step deviations. Expected shape: Plumber's choice is locally
// optimal except near bottleneck transitions, where similarly-ranked
// stages make the choice ambiguous.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/rewriter.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

void RunSetup(const MachineSpec& machine, int steps) {
  PrintHeader("Figure 13: MultiBoxSSD one-step deviations (" +
              machine.name + ")");
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload("multibox_ssd")).value();
  GraphDef graph = NaiveConfiguration(workload.graph);
  Rng rng(7);
  auto plumber_tuner = MakePlumberStepTuner();

  Table table({"step", "plumber choice", "plumber mb/s", "best deviation",
               "deviation mb/s", "locally optimal"});
  for (int step = 0; step < steps; ++step) {
    // Trace current config.
    auto pipeline = std::move(Pipeline::Create(
                                  graph, env.MakePipelineOptions(
                                             machine.cpu_scale)))
                        .value();
    TraceOptions topts;
    topts.trace_seconds = 0.12;
    topts.machine = machine;
    const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
    pipeline->Cancel();
    auto model = std::move(PipelineModel::Build(trace, &env.udfs)).value();
    TunerContext ctx;
    ctx.model = &model;
    ctx.machine = machine;
    ctx.rng = &rng;
    auto plumber_next = plumber_tuner->Step(graph, ctx);
    if (!plumber_next.ok()) break;

    // Which node did Plumber touch?
    std::string choice = "(none)";
    for (const auto& node : rewriter::TunableNodes(graph)) {
      if (*rewriter::GetParallelism(*plumber_next, node) !=
          *rewriter::GetParallelism(graph, node)) {
        choice = node;
      }
    }
    const double plumber_rate =
        MeasureRate(env, *plumber_next, machine, 0.12);

    // Three random one-step deviations.
    double best_dev_rate = 0;
    std::string best_dev = "(none)";
    const auto tunables = rewriter::TunableNodes(graph);
    for (int d = 0; d < 3; ++d) {
      const std::string& node = tunables[rng.UniformInt(tunables.size())];
      GraphDef deviation = graph;
      const int p = *rewriter::GetParallelism(deviation, node);
      if (p < machine.num_cores) {
        (void)rewriter::SetParallelism(&deviation, node, p + 1);
      }
      const double rate = MeasureRate(env, deviation, machine, 0.12);
      if (rate > best_dev_rate) {
        best_dev_rate = rate;
        best_dev = node;
      }
    }
    // 5% tolerance: measurement noise near transitions.
    const bool locally_optimal = plumber_rate >= best_dev_rate * 0.95;
    table.AddRow({std::to_string(step), choice, Table::Num(plumber_rate),
                  best_dev, Table::Num(best_dev_rate),
                  locally_optimal ? "yes" : "NO"});
    graph = std::move(plumber_next).value();
  }
  table.Print();
}

}  // namespace

int main() {
  RunSetup(MachineSpec::SetupA(), 10);
  RunSetup(MachineSpec::SetupB(), 10);
  return 0;
}
