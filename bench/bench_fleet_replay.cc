// Fleet trace-replay bench: 1000 jobs from the calibrated class
// mixture replayed through a 4-host modeled cluster.
//
// Phase A (dispatch policy): the same seeded bursty trace is replayed
// under round-robin and least-loaded dispatch (work stealing off so
// the policies are isolated). Bursts of heterogeneous jobs punish
// load-oblivious dispatch: round-robin balances job *counts* while the
// heavy tail piles modeled work onto unlucky hosts, so least-loaded
// must cut the p95 completion latency by >= 1.3x (the acceptance bar).
//
// Phase B (work stealing): a backlog pinned entirely to host 0 under
// the locality policy with stealing on — the idle hosts must take over
// part of the queue (steal_count > 0).
//
// BENCH_METRIC lines are gated by scripts/check_bench_regression.py:
// *_latency_s metrics gate as lower-is-better, *_count is context.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/api/fleet_session.h"
#include "src/util/busy_work.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

constexpr int kHosts = 4;
constexpr int kJobs = 1000;

std::unique_ptr<FleetSession> MakeFleet(fleet::DispatchPolicy policy,
                                        bool stealing) {
  FleetSessionOptions options;
  for (int h = 0; h < kHosts; ++h) {
    MachineSpec machine;
    machine.name = "host" + std::to_string(h);
    machine.num_cores = 2;
    options.hosts.push_back(machine);
  }
  options.fleet.policy = policy;
  options.fleet.work_stealing = stealing;
  // One job at a time per host: queue depth is then an honest load
  // signal, and a heavy job head-of-line blocks everything round-robin
  // keeps stacking behind it.
  options.fleet.host_concurrent_jobs = 1;
  return std::make_unique<FleetSession>(std::move(options));
}

fleet::ArrivalTrace BurstyTrace() {
  fleet::BurstyTraceOptions options;
  // Within-burst arrivals pace at service speed (a few ms): a host
  // head-of-line blocked on a heavy job visibly retains its queue, so
  // a load-aware dispatcher routes around it while round-robin keeps
  // stacking. Arrivals much faster than service would blind the count
  // signal and the policies would tie.
  options.seed = 2022;
  options.num_jobs = kJobs;
  options.burst_interarrival_s = 0.008;
  options.idle_gap_s = 0.12;
  options.mean_burst_len = 40;
  return fleet::MakeBurstyTrace(fleet::CalibratedJobClasses(), options);
}

}  // namespace

int main() {
  std::printf("BENCH_METRIC host_spin_rounds_per_ns %.6f\n",
              SpinRoundsPerNano());
  PrintHeader("Fleet trace replay: 1000 jobs on 4 modeled hosts");

  const fleet::ArrivalTrace trace = BurstyTrace();
  fleet::TraceReplayOptions replay;
  replay.time_scale = 2.0;  // replay the trace at double speed

  // -- Phase A: round-robin vs least-loaded on the same bursty trace.
  fleet::FleetReport rr, ll;
  {
    auto cluster = MakeFleet(fleet::DispatchPolicy::kRoundRobin,
                             /*stealing=*/false);
    auto report = cluster->Replay(trace, replay);
    if (!report.ok() || report->failed_jobs > 0) {
      std::printf("round-robin replay failed: %s (%lld failed jobs)\n",
                  report.ok() ? "" : report.status().ToString().c_str(),
                  report.ok() ? (long long)report->failed_jobs : 0LL);
      return 1;
    }
    rr = *report;
  }
  {
    auto cluster = MakeFleet(fleet::DispatchPolicy::kLeastLoaded,
                             /*stealing=*/false);
    auto report = cluster->Replay(trace, replay);
    if (!report.ok() || report->failed_jobs > 0) {
      std::printf("least-loaded replay failed: %s (%lld failed jobs)\n",
                  report.ok() ? "" : report.status().ToString().c_str(),
                  report.ok() ? (long long)report->failed_jobs : 0LL);
      return 1;
    }
    ll = *report;
  }

  Table table({"policy", "p50 s", "p95 s", "p99 s", "mean util",
               "makespan s"});
  table.AddRow({"round_robin", Table::Num(rr.p50_completion_s, 3),
                Table::Num(rr.p95_completion_s, 3),
                Table::Num(rr.p99_completion_s, 3),
                Table::Num(rr.mean_utilization, 2),
                Table::Num(rr.makespan_s, 1)});
  table.AddRow({"least_loaded", Table::Num(ll.p50_completion_s, 3),
                Table::Num(ll.p95_completion_s, 3),
                Table::Num(ll.p99_completion_s, 3),
                Table::Num(ll.mean_utilization, 2),
                Table::Num(ll.makespan_s, 1)});
  table.Print();
  const double p95_ratio = ll.p95_completion_s > 0
                               ? rr.p95_completion_s / ll.p95_completion_s
                               : 0;
  std::printf("\np95 completion: round_robin / least_loaded = %.2fx "
              "(acceptance bar: >= 1.3x)\n",
              p95_ratio);

  // -- Phase B: locality-pinned backlog, stealing on. Every job pins
  // to host 0 (num_hosts=1 confines the pin space); the drain forces
  // the other three hosts to steal.
  int64_t steals = 0;
  {
    auto cluster = MakeFleet(fleet::DispatchPolicy::kLocality,
                             /*stealing=*/true);
    fleet::PoissonTraceOptions popts;
    popts.seed = 11;
    popts.num_jobs = 200;
    popts.pin_fraction = 1.0;
    popts.num_hosts = 1;
    const fleet::ArrivalTrace pinned =
        fleet::MakePoissonTrace(fleet::CalibratedJobClasses(), popts);
    fleet::TraceReplayOptions drain;
    drain.respect_arrivals = false;
    auto report = cluster->Replay(pinned, drain);
    if (!report.ok() || report->failed_jobs > 0) {
      std::printf("pinned replay failed: %s\n",
                  report.ok() ? "jobs failed"
                              : report.status().ToString().c_str());
      return 1;
    }
    steals = report->steal_count;
    std::printf("\npinned backlog: %lld of %d jobs stolen to idle hosts "
                "(bar: > 0)\n",
                (long long)steals, 200);
  }

  std::printf("BENCH_METRIC fleet.p50_latency_s %.4f\n",
              ll.p50_completion_s);
  std::printf("BENCH_METRIC fleet.p95_latency_s %.4f\n",
              ll.p95_completion_s);
  std::printf("BENCH_METRIC fleet.p99_latency_s %.4f\n",
              ll.p99_completion_s);
  std::printf("BENCH_METRIC fleet.utilization %.4f\n",
              ll.mean_utilization);
  // The policy gap gates as a ratio (portable across hosts); capped so
  // an unusually bad round-robin run can't inflate the baseline.
  std::printf("BENCH_METRIC fleet.p95_rr_over_ll_rel %.4f\n",
              std::min(p95_ratio, 2.0));
  std::printf("BENCH_METRIC fleet.steal_count %lld\n", (long long)steals);
  return (p95_ratio >= 1.3 && steals > 0) ? 0 : 1;
}
