// google-benchmark microbenchmarks for the analysis layer: simplex
// solves, closed-form allocation, model building from traces.
#include <benchmark/benchmark.h>

#include "src/lp/maximin_allocator.h"
#include "src/lp/simplex.h"
#include "src/util/rng.h"

namespace plumber {
namespace {

std::vector<MaxMinStage> RandomStages(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<MaxMinStage> stages;
  for (int i = 0; i < n; ++i) {
    MaxMinStage s;
    s.name = "s" + std::to_string(i);
    s.rate_per_core = 0.5 + rng.UniformDouble() * 20;
    s.sequential = rng.Bernoulli(0.3);
    stages.push_back(s);
  }
  return stages;
}

void BM_MaxMinClosedForm(benchmark::State& state) {
  const auto stages = RandomStages(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMaxMin(stages, 96));
  }
}
BENCHMARK(BM_MaxMinClosedForm)->Arg(8)->Arg(64);

void BM_SimplexAllocation(benchmark::State& state) {
  const auto stages = RandomStages(static_cast<int>(state.range(0)), 42);
  LpProblem lp;
  const int t = lp.AddVariable("t", 1.0);
  std::vector<std::pair<int, double>> budget;
  for (const auto& stage : stages) {
    const int theta = lp.AddVariable(
        "theta_" + stage.name, 0.0,
        stage.sequential ? 1.0 : std::numeric_limits<double>::infinity());
    lp.AddConstraint({{t, 1.0}, {theta, -stage.rate_per_core}},
                     ConstraintSense::kLe, 0.0);
    budget.push_back({theta, 1.0});
  }
  lp.AddConstraint(budget, ConstraintSense::kLe, 96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSimplex(lp));
  }
}
BENCHMARK(BM_SimplexAllocation)->Arg(8)->Arg(32);

void BM_SimplexTextbook(benchmark::State& state) {
  LpProblem lp;
  const int x = lp.AddVariable("x", 3.0);
  const int y = lp.AddVariable("y", 5.0);
  lp.AddConstraint({{x, 1.0}}, ConstraintSense::kLe, 4);
  lp.AddConstraint({{y, 2.0}}, ConstraintSense::kLe, 12);
  lp.AddConstraint({{x, 3.0}, {y, 2.0}}, ConstraintSense::kLe, 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSimplex(lp));
  }
}
BENCHMARK(BM_SimplexTextbook);

}  // namespace
}  // namespace plumber

BENCHMARK_MAIN();
