// google-benchmark microbenchmarks for the pipeline engine: per-Next
// overhead, stats accounting cost, operator throughput, element copies.
#include <benchmark/benchmark.h>

#include "src/pipeline/graph_builder.h"
#include "src/pipeline/pipeline.h"
#include "src/util/busy_work.h"

namespace plumber {
namespace {

struct EngineFixture {
  SimFilesystem fs;
  UdfRegistry udfs;

  EngineFixture() {
    for (int f = 0; f < 4; ++f) {
      std::vector<uint64_t> sizes(5000, 128);
      (void)fs.CreateRecordFile("data/f" + std::to_string(f), f + 1,
                                std::move(sizes));
    }
    UdfSpec noop;
    noop.name = "noop";
    (void)udfs.Register(noop);
  }

  PipelineOptions Options(bool tracing, int engine_batch_size = 1) {
    PipelineOptions options;
    options.fs = &fs;
    options.udfs = &udfs;
    options.tracing_enabled = tracing;
    options.engine_batch_size = engine_batch_size;
    return options;
  }
};

GraphDef SimpleChain(int parallelism) {
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 2, 1);
  n = b.Map("m", n, "noop", parallelism);
  n = b.Repeat("r", n, -1);
  return std::move(b.Build(n)).value();
}

void BM_NextCallTraced(benchmark::State& state) {
  EngineFixture fx;
  auto pipeline = std::move(
                      Pipeline::Create(SimpleChain(1), fx.Options(true)))
                      .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iterator->GetNext(&e, &end));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NextCallTraced);

void BM_NextCallUntraced(benchmark::State& state) {
  EngineFixture fx;
  auto pipeline = std::move(
                      Pipeline::Create(SimpleChain(1), fx.Options(false)))
                      .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iterator->GetNext(&e, &end));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NextCallUntraced);

void BM_ParallelMapThroughput(benchmark::State& state) {
  EngineFixture fx;
  auto pipeline =
      std::move(Pipeline::Create(SimpleChain(static_cast<int>(state.range(0))),
                                 fx.Options(true)))
          .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iterator->GetNext(&e, &end));
  }
  state.SetItemsProcessed(state.iterations());
  pipeline->Cancel();
}
BENCHMARK(BM_ParallelMapThroughput)->Arg(1)->Arg(4)->Arg(8);

// The batched-engine case the batching work targets: a cheap (noop)
// UDF behind a high-parallelism map, where per-element queue handoffs
// and input-lock traffic dominate modeled work. Arg0 = parallelism,
// Arg1 = engine batch size; batch 1 is the classic element-at-a-time
// engine. The CI regression gate keys off the items/sec of these
// cases (the ratio between batch=64 and batch=1 is the tentpole's
// >=2x acceptance criterion).
void BM_EngineBatchCheapUdf(benchmark::State& state) {
  EngineFixture fx;
  const int parallelism = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  GraphBuilder b;
  auto n = b.Range("src", -1);
  n = b.Map("m", n, "noop", parallelism);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             fx.Options(true, batch)))
                      .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iterator->GetNext(&e, &end));
  }
  state.SetItemsProcessed(state.iterations());
  pipeline->Cancel();
}
BENCHMARK(BM_EngineBatchCheapUdf)
    ->Args({8, 1})
    ->Args({8, 16})
    ->Args({8, 64})
    ->UseRealTime();

// The zero-synchronization reference bound for the cheap-UDF case: the
// same logical work (range source -> noop map) on ONE thread with NO
// channels — parallelism 1 instantiates the sequential map, so every
// element moves by plain function return. The ratio of
// BM_EngineBatchCheapUdf/8/64 to this bound is the data plane's
// remaining synchronization gap; check_bench_regression.py derives it
// as micro_engine.sync_gap_rel and gates it per-PR (ratios are
// portable across host shapes).
void BM_EngineNoSyncBound(benchmark::State& state) {
  EngineFixture fx;
  const int batch = static_cast<int>(state.range(0));
  GraphBuilder b;
  auto n = b.Range("src", -1);
  n = b.Map("m", n, "noop", /*parallelism=*/1);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             fx.Options(true, batch)))
                      .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iterator->GetNext(&e, &end));
  }
  state.SetItemsProcessed(state.iterations());
  pipeline->Cancel();
}
BENCHMARK(BM_EngineNoSyncBound)->Arg(64)->UseRealTime();

// Same sweep through a full read->map->batch chain (records off the
// simulated filesystem, batch assembly via the batched claim path).
void BM_EngineBatchReadChain(benchmark::State& state) {
  EngineFixture fx;
  const int batch = static_cast<int>(state.range(0));
  GraphBuilder b;
  auto n = b.Interleave("il", b.FileList("files", "data/"), 4, 2);
  n = b.Map("m", n, "noop", 8);
  n = b.Repeat("r", n, -1);
  n = b.Batch("bt", n, 16);
  auto pipeline = std::move(Pipeline::Create(std::move(b.Build(n)).value(),
                                             fx.Options(true, batch)))
                      .value();
  auto iterator = std::move(pipeline->MakeIterator()).value();
  Element e;
  bool end;
  for (auto _ : state) {
    benchmark::DoNotOptimize(iterator->GetNext(&e, &end));
  }
  state.SetItemsProcessed(state.iterations() * 16);
  pipeline->Cancel();
}
BENCHMARK(BM_EngineBatchReadChain)->Arg(1)->Arg(16)->Arg(64)->UseRealTime();

void BM_GraphSerializeParse(benchmark::State& state) {
  const GraphDef g = SimpleChain(4);
  for (auto _ : state) {
    auto parsed = GraphDef::Parse(g.Serialize());
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_GraphSerializeParse);

void BM_BurnCalibration(benchmark::State& state) {
  const int64_t ns = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BurnCpuNanos(ns));
  }
  // Host speed signal: the calibrated spin rate is proportional to
  // single-core throughput, so the CI regression gate divides absolute
  // items/s by it to compare baselines across dev- and CI-class hosts
  // (see scripts/check_bench_regression.py).
  state.counters["spin_rounds_per_ns"] = SpinRoundsPerNano();
}
BENCHMARK(BM_BurnCalibration)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ElementClone(benchmark::State& state) {
  Element e = Element::FromBuffer(Buffer(state.range(0), 7));
  for (auto _ : state) {
    Element copy = e.Clone();
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ElementClone)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace plumber

BENCHMARK_MAIN();
