// Ablation: what each optimizer pass contributes.
//
// DESIGN.md calls out three design choices in the Plumber optimizer —
// LP parallelism, prefetch injection, and cache insertion — that the
// paper motivates separately (§4.1, §4.3). This bench measures the
// end-to-end rate of resnet18 and multibox_ssd with passes enabled
// cumulatively, plus two LP ablations:
//   - "local" allocation instead of the LP (the paper's Fig. 7 baseline
//     that chases one bottleneck at a time),
//   - cache placement by greedy chain rule vs. LP re-solve enumeration.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/workloads/datagen.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

struct PassConfig {
  const char* label;
  bool parallelism;
  bool prefetch;
  bool cache;
  bool enumerate_caches;
};

double MeasureConfig(const Workload& workload, const MachineSpec& machine,
                     const PassConfig& config) {
  Session session = MakeWorkloadSession(machine, workload.storage);
  OptimizeOptions options;
  options.trace_seconds = 0.25;
  options.evaluate_warmup_seconds = 0.8;
  options.enable_parallelism = config.parallelism;
  options.enable_prefetch = config.prefetch;
  options.enable_cache = config.cache;
  options.enumerate_caches = config.enumerate_caches;
  options.lp_options.disk_bandwidth = workload.storage.max_bandwidth;
  auto result = session.FromGraph(NaiveConfiguration(workload.graph))
                    .Optimize(options);
  if (!result.ok()) return 0;

  Session fresh = MakeWorkloadSession(machine, workload.storage);
  return MeasureRate(fresh, std::move(result->Graph()).value(), 0.8,
                     workload.ModelStepSeconds(), 1.6);
}

void RunWorkloadAblation(const std::string& name, int cores) {
  PrintHeader("Ablation: optimizer passes on " + name);
  auto workload = std::move(MakeWorkload(name)).value();
  MachineSpec machine = MachineSpec::SetupC(kMemoryScale);
  machine.num_cores = cores;

  const PassConfig configs[] = {
      {"none (naive)", false, false, false, false},
      {"+LP parallelism", true, false, false, false},
      {"+prefetch", true, true, false, false},
      {"+cache (greedy)", true, true, true, false},
      {"+cache (LP enumeration)", true, true, true, true},
  };
  Table table({"passes", "mb/s", "vs naive"});
  double naive_rate = 0;
  for (const PassConfig& config : configs) {
    const double rate = MeasureConfig(workload, machine, config);
    if (naive_rate == 0) naive_rate = rate > 0 ? rate : 1;
    table.AddRow({config.label, Table::Num(rate, 1),
                  Table::Num(rate / naive_rate, 2) + "x"});
    std::fflush(stdout);
  }
  table.Print();
}

}  // namespace

int main() {
  const int cores = std::min(
      96, static_cast<int>(std::thread::hardware_concurrency()));
  RunWorkloadAblation("resnet18", cores);
  RunWorkloadAblation("multibox_ssd", cores);
  std::printf(
      "\nExpected shape: LP parallelism provides the bulk of the win over\n"
      "naive; prefetch adds overlap; caching lifts the pipeline past the\n"
      "I/O bound (paper Fig. 10). Greedy and LP-enumerated cache placement\n"
      "agree on these linear pipelines (paper 4.3 'greedy yet optimal').\n");
  return 0;
}
