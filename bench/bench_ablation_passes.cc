// Ablation: what each optimizer pass contributes.
//
// The pass framework makes this sweep self-maintaining: instead of
// bespoke enable_* flag combinations, the bench asks
// PassRegistry::Global() for the canonical pass order and measures the
// end-to-end rate of resnet18 and multibox_ssd under cumulative
// schedules — naive, then each registered pass added in turn (the cache
// step also appends the default trailing re-parallelism so the LP can
// redistribute the cores a cache frees), plus the LP-enumerated cache
// placement variant. A pass registered tomorrow joins the ablation
// without touching this file.
//
// Emits BENCH_METRIC lines for the CI regression gate: absolute mb/s
// per schedule plus speedup-vs-naive ratios (the `_rel` metrics, which
// compare across host classes), and the host's spin calibration rate so
// the gate can normalize absolute rates across hosts.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/passes/pass_registry.h"
#include "src/pipeline/ops.h"
#include "src/util/busy_work.h"
#include "src/workloads/datagen.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

struct AblationConfig {
  std::string label;     // table row label
  std::string key;       // BENCH_METRIC key component
  std::string schedule;  // "" = no optimization (naive)
  bool enumerate_caches = false;
};

std::vector<AblationConfig> RegistrySchedules() {
  std::vector<AblationConfig> configs;
  configs.push_back({"none (naive)", "naive", ""});
  std::vector<std::string> cumulative;
  for (const std::string& name : PassRegistry::Global().Names()) {
    cumulative.push_back(name);
    // A pass's declared follow-up joins its cumulative step (cache
    // pulls in the re-parallelism of the default schedule).
    auto pass = PassRegistry::Global().Create(name);
    if (pass.ok() && (*pass)->followup() != nullptr) {
      cumulative.push_back((*pass)->followup());
    }
    configs.push_back({"+" + name, "cum_" + name, JoinPassNames(cumulative)});
  }
  configs.push_back({"+cache (LP enumeration)", "cache_enum",
                     kDefaultPassSchedule, /*enumerate_caches=*/true});
  return configs;
}

double MeasureConfig(const Workload& workload, const MachineSpec& machine,
                     const AblationConfig& config) {
  GraphDef graph = NaiveConfiguration(workload.graph);
  if (!config.schedule.empty()) {
    Session session = MakeWorkloadSession(machine, workload.storage);
    OptimizeOptions options;
    options.trace_seconds = 0.25;
    options.evaluate_warmup_seconds = 0.8;
    options.enumerate_caches = config.enumerate_caches;
    options.lp_options.disk_bandwidth = workload.storage.max_bandwidth;
    auto result = session.FromGraph(graph).OptimizeWith(config.schedule,
                                                        options);
    if (!result.ok()) {
      std::fprintf(stderr, "optimize(%s) failed: %s\n",
                   config.schedule.c_str(),
                   result.status().ToString().c_str());
      return 0;
    }
    graph = std::move(result->Graph()).value();
  }
  Session fresh = MakeWorkloadSession(machine, workload.storage);
  return MeasureRate(fresh, graph, 0.8, workload.ModelStepSeconds(), 1.6);
}

void RunWorkloadAblation(const std::string& name, int cores) {
  PrintHeader("Ablation: optimizer passes on " + name);
  auto workload = std::move(MakeWorkload(name)).value();
  MachineSpec machine = MachineSpec::SetupC(kMemoryScale);
  machine.num_cores = cores;

  Table table({"schedule", "mb/s", "vs naive"});
  double naive_rate = 0;
  for (const AblationConfig& config : RegistrySchedules()) {
    const double rate = MeasureConfig(workload, machine, config);
    if (naive_rate == 0) naive_rate = rate > 0 ? rate : 1;
    table.AddRow({config.label, Table::Num(rate, 1),
                  Table::Num(rate / naive_rate, 2) + "x"});
    std::printf("BENCH_METRIC ablation.%s.%s_mbps %.4f\n", name.c_str(),
                config.key.c_str(), rate);
    if (config.key != "naive") {
      std::printf("BENCH_METRIC ablation.%s.%s_rel %.4f\n", name.c_str(),
                  config.key.c_str(), rate / naive_rate);
    }
    std::fflush(stdout);
  }
  table.Print();
}

// Source-bound sharding scenario (§4.1 extensions): a cheap pipeline
// behind a 200KB/s modeled disk is I/O bound no matter how much CPU
// parallelism the LP hands out; ShardSourcesPass splits the reader
// across per-shard modeled disks, so aggregate source bandwidth scales
// with the shard count. Exit-code gated: the sharded program must read
// against >= 2 modeled disks and measure >= 1.5x the unsharded rate
// (per-shard device metering itself is pinned by placement_test).
bool ShardScenario() {
  PrintHeader("Ablation: shard_sources on a source-bound pipeline");
  const DeviceSpec disk = DeviceSpec::TokenBucketLimit(2e5);
  MachineSpec machine = MachineSpec::SetupC(kMemoryScale);

  GraphBuilder b;
  auto n = b.TfRecord("reader", b.FileList("files", "imagenet/train-"));
  n = b.Batch("batch", n, 32);
  const GraphDef naive = std::move(b.Build(n)).value();

  GraphDef graphs[2];  // [0] = parallelism only, [1] = sharded
  const char* schedules[2] = {"parallelism", "shard_sources,parallelism"};
  for (int i = 0; i < 2; ++i) {
    Session session = MakeWorkloadSession(machine, disk);
    OptimizeOptions options;
    options.trace_seconds = 0.25;
    options.lp_options.disk_bandwidth = disk.max_bandwidth;
    auto result = session.FromGraph(naive).OptimizeWith(schedules[i], options);
    if (!result.ok()) {
      std::printf("FAIL: optimize(%s): %s\n", schedules[i],
                  result.status().ToString().c_str());
      return false;
    }
    graphs[i] = std::move(result->Graph()).value();
  }

  int shard_readers = 0;
  for (const NodeDef& node : graphs[1].nodes()) {
    if (node.op == "tfrecord" && node.GetInt(kAttrShardCount, 0) > 0) {
      ++shard_readers;
    }
  }

  double rates[2];
  for (int i = 0; i < 2; ++i) {
    Session session = MakeWorkloadSession(machine, disk);
    rates[i] = MeasureRate(session, graphs[i], 0.8, 0, 0.4);
  }
  const double speedup = rates[0] > 0 ? rates[1] / rates[0] : 0;
  std::printf("unsharded %.1f mb/s; %d shard disks %.1f mb/s "
              "(%.2fx, bar: >= 1.5x)\n",
              rates[0], shard_readers, rates[1], speedup);
  std::printf("BENCH_METRIC ablation.shard.unsharded_mbps %.4f\n", rates[0]);
  std::printf("BENCH_METRIC ablation.shard.sharded_mbps %.4f\n", rates[1]);
  std::printf("BENCH_METRIC ablation.shard.speedup_rel %.4f\n", speedup);
  bool ok = true;
  if (shard_readers < 2) {
    std::printf("FAIL: expected >= 2 shard readers, got %d\n", shard_readers);
    ok = false;
  }
  if (speedup < 1.5) {
    std::printf("FAIL: shard speedup %.2fx below the 1.5x bar\n", speedup);
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  // Host speed signal for cross-host baseline normalization (see
  // scripts/check_bench_regression.py; excluded from gating itself).
  std::printf("BENCH_METRIC host_spin_rounds_per_ns %.6f\n",
              SpinRoundsPerNano());
  const int cores = std::min(
      96, static_cast<int>(std::thread::hardware_concurrency()));
  RunWorkloadAblation("resnet18", cores);
  RunWorkloadAblation("multibox_ssd", cores);
  const bool shard_ok = ShardScenario();
  std::printf(
      "\nExpected shape: LP parallelism provides the bulk of the win over\n"
      "naive; prefetch adds overlap; caching lifts the pipeline past the\n"
      "I/O bound (paper Fig. 10); engine-batch autotuning only moves\n"
      "pipelines whose parallel stages are engine-overhead-bound. Greedy\n"
      "and LP-enumerated cache placement agree on these linear pipelines\n"
      "(paper 4.3 'greedy yet optimal'). Sharding lifts a source-bound\n"
      "pipeline by reading against multiple modeled disks.\n");
  return shard_ok ? 0 : 1;
}
