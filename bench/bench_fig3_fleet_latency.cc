// Reproduces Fig. 3: CDF of per-step Next latency across the (synthetic)
// fleet, plus the headline quantiles the paper reports in §3.1.
#include <cstdio>

#include "src/fleet/fleet_sim.h"
#include "src/util/table.h"

int main() {
  using namespace plumber;
  std::printf("==== Figure 3: fleet Next-latency CDF ====\n");
  FleetModelOptions options;
  options.num_jobs = 200000;
  const auto jobs = SimulateFleet(options);

  const std::vector<double> points = {10e-6, 50e-6, 100e-6, 500e-6, 1e-3,
                                      5e-3,  10e-3, 50e-3,  100e-3, 500e-3,
                                      1.0,   5.0};
  Table table({"latency", "CDF (frac jobs <=)", "frac jobs >"});
  for (const auto& [latency, cdf] : FleetLatencyCdf(jobs, points)) {
    char label[32];
    if (latency < 1e-3) {
      std::snprintf(label, sizeof(label), "%.0fus", latency * 1e6);
    } else if (latency < 1.0) {
      std::snprintf(label, sizeof(label), "%.0fms", latency * 1e3);
    } else {
      std::snprintf(label, sizeof(label), "%.0fs", latency);
    }
    table.AddRow({label, Table::Num(cdf, 3), Table::Num(1 - cdf, 3)});
  }
  table.Print();

  const FleetSummary s = SummarizeFleet(jobs);
  std::printf("\nHeadline quantiles (paper: 92%% / 62%% / 16%%):\n");
  Table headline({"threshold", "measured frac above", "paper"});
  headline.AddRow({"50us", Table::Num(s.frac_above_50us, 3), "0.92"});
  headline.AddRow({"1ms", Table::Num(s.frac_above_1ms, 3), "0.62"});
  headline.AddRow({"100ms", Table::Num(s.frac_above_100ms, 3), "0.16"});
  headline.Print();

  // Seeded simulation, so these are deterministic: the _rel suffix
  // marks them portable for check_bench_regression.py and any drift
  // from the blessed fractions is a modeling regression.
  std::printf("BENCH_METRIC fleet.frac_above_50us_rel %.4f\n",
              s.frac_above_50us);
  std::printf("BENCH_METRIC fleet.frac_above_1ms_rel %.4f\n",
              s.frac_above_1ms);
  std::printf("BENCH_METRIC fleet.frac_above_100ms_rel %.4f\n",
              s.frac_above_100ms);
  return 0;
}
