// Network subsystem bench: the headline gate for src/net/.
//
// Phase A (remote-read throughput): a remote_read pipeline behind a
// session NIC with a hard token-bucket cap must sustain a wire rate
// within 15% of the modeled bandwidth bound — the NetworkDevice paces
// like the resource it models, and nothing else in the engine gets in
// the way at NIC speed.
//
// Phase B (optimizer diagnosis): the same ingest behind a NIC too slow
// for the pipeline's CPU bound must come back from the optimizer as
// network_limited, and ShardSourcesPass must refuse to shard it (N
// disks cannot feed a rate the wire refuses to carry).
//
// Phase C (costed migration): a backlog pinned to host 0, drained three
// ways — no stealing, stealing over free (unlimited) NICs, stealing
// over NICs with real bandwidth + latency. Stealing must still win over
// not stealing, and the costed p95 must sit within the modeled transfer
// time of the free-migration baseline (steals x both endpoints' charge).
//
// Phase D (streaming front door): a time-varying open-loop trace with a
// latency-SLO'd interactive class replayed through an SLO-aware fleet;
// the interactive p95 must meet the class target and attainment must
// hold — the exit-code gate for the online-inference story.
//
// BENCH_METRIC lines are gated by scripts/check_bench_regression.py:
// *_latency_s metrics gate as lower-is-better, *_count is context.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/api/fleet_session.h"
#include "src/net/network_device.h"
#include "src/util/busy_work.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

GraphDef RemoteIngestGraph() {
  GraphBuilder b;
  return std::move(b.Build(b.RemoteRead("remote", b.FileList("files", "data/"))))
      .value();
}

// ---------------------------------------------------------- Phase A

bool RunRemoteReadThroughput(double* out_frac) {
  PrintHeader("Phase A: remote_read throughput vs modeled NIC bound");
  const double bandwidth = 16e6;  // 16 MB/s token-bucket cap
  constexpr int kFiles = 4, kRecords = 500;
  constexpr uint64_t kRecordBytes = 8192;

  Session session;
  if (!session.CreateRecordFiles("data/f", kFiles, kRecords, kRecordBytes)
           .ok()) {
    return false;
  }
  session.AttachNic(NicSpec::TokenBucketLimit(bandwidth));

  RunOptions window;
  window.max_seconds = 30;  // safety stop; one epoch ends well before
  auto report = session.FromGraph(RemoteIngestGraph()).Run(window);
  if (!report.ok() || !report->reached_end) {
    std::printf("remote_read run failed: %s\n",
                report.ok() ? "did not reach end"
                            : report.status().ToString().c_str());
    return false;
  }
  const uint64_t wire_bytes = session.nic()->total_bytes();
  const double measured = wire_bytes / report->wall_seconds;
  const double frac = measured / bandwidth;
  *out_frac = frac;
  std::printf("moved %llu wire bytes in %.3fs: %.2f MB/s measured vs "
              "%.2f MB/s modeled (%.1f%%, bar: within 15%%)\n",
              (unsigned long long)wire_bytes, report->wall_seconds,
              measured / 1e6, bandwidth / 1e6, frac * 100);
  return frac >= 0.85 && frac <= 1.15;
}

// ---------------------------------------------------------- Phase B

bool RunOptimizerDiagnosis() {
  PrintHeader("Phase B: NIC-bound plan diagnosed network_limited");
  Session session;
  if (!session.CreateRecordFiles("data/f", 4, 400, 8192).ok()) return false;
  // A modeled HDD (so ShardSourcesPass has a disk bound to consider)
  // behind a 2 MB/s NIC: ~244 records/s of wire budget, far under both
  // the disk and the CPU bound, so the network owns the bottleneck
  // label and sharding must refuse.
  session.AttachStorage(DeviceSpec::Hdd());
  session.AttachNic(NicSpec::TokenBucketLimit(2e6));

  // The disk bound is an explicit planner knob: hand the pass the HDD's
  // bandwidth so it has a disk constraint to weigh against the wire.
  OptimizeOptions oopts;
  oopts.lp_options.disk_bandwidth = DeviceSpec::Hdd().max_bandwidth;
  auto optimized = session.FromGraph(RemoteIngestGraph())
                       .OptimizeWith("parallelism,shard_sources", oopts);
  if (!optimized.ok()) {
    std::printf("optimize failed: %s\n",
                optimized.status().ToString().c_str());
    return false;
  }
  bool plan_flag = optimized->plan.network_limited;
  bool lp_reported = false, shard_refused = false;
  for (const PassReport& pass : optimized->pass_reports) {
    std::printf("  pass %-12s %s\n", pass.pass.c_str(),
                pass.summary.c_str());
    if (pass.pass == "parallelism" &&
        pass.summary.find("network_limited") != std::string::npos) {
      lp_reported = true;
    }
    if (pass.pass == "shard_sources" && pass.shard_count == 0 &&
        pass.summary.find("network-limited") != std::string::npos) {
      shard_refused = true;
    }
  }
  std::printf("plan.network_limited=%d lp_reported=%d shard_refused=%d "
              "(bar: all three)\n",
              plan_flag, lp_reported, shard_refused);
  return plan_flag && lp_reported && shard_refused;
}

// ---------------------------------------------------------- Phase C

constexpr int kHosts = 4;

std::unique_ptr<FleetSession> MakeFleet(bool stealing, const NicSpec& nic) {
  FleetSessionOptions options;
  for (int h = 0; h < kHosts; ++h) {
    MachineSpec machine;
    machine.name = "host" + std::to_string(h);
    machine.num_cores = 2;
    machine.nic = nic;
    options.hosts.push_back(machine);
  }
  options.fleet.policy = fleet::DispatchPolicy::kLocality;
  options.fleet.work_stealing = stealing;
  options.fleet.host_concurrent_jobs = 1;
  return std::make_unique<FleetSession>(std::move(options));
}

fleet::ArrivalTrace PinnedBacklog() {
  fleet::PoissonTraceOptions options;
  options.seed = 11;
  options.num_jobs = 160;
  options.pin_fraction = 1.0;
  options.num_hosts = 1;  // every pin lands on host 0
  return fleet::MakePoissonTrace(fleet::CalibratedJobClasses(), options);
}

bool ReplayBacklog(FleetSession& cluster, const fleet::ArrivalTrace& trace,
                   fleet::FleetReport* out) {
  fleet::TraceReplayOptions drain;
  drain.respect_arrivals = false;
  auto report = cluster.Replay(trace, drain);
  if (!report.ok() || report->failed_jobs > 0) {
    std::printf("backlog replay failed: %s\n",
                report.ok() ? "jobs failed"
                            : report.status().ToString().c_str());
    return false;
  }
  *out = *report;
  return true;
}

bool RunCostedStealing(fleet::FleetReport* nosteal, fleet::FleetReport* free,
                       fleet::FleetReport* costed, double* allowance_s) {
  PrintHeader("Phase C: work stealing with migration transfer costs");
  const fleet::ArrivalTrace trace = PinnedBacklog();
  NicSpec cost_nic;
  cost_nic.name = "costed";
  cost_nic.max_bandwidth = 5e6;
  cost_nic.latency_s = 0.5e-3;

  auto a = MakeFleet(/*stealing=*/false, NicSpec::Unlimited());
  if (!ReplayBacklog(*a, trace, nosteal)) return false;
  auto b = MakeFleet(/*stealing=*/true, NicSpec::Unlimited());
  if (!ReplayBacklog(*b, trace, free)) return false;
  auto c = MakeFleet(/*stealing=*/true, cost_nic);
  if (!ReplayBacklog(*c, trace, costed)) return false;

  // Modeled upper bound on what the costed migrations may add to any
  // job: every steal charges both endpoints latency + payload/bw, and
  // migrations serialize in the dispatcher in the worst case. A small
  // absolute epsilon absorbs run-to-run scheduler noise.
  const double payload =
      costed->steal_count > 0
          ? static_cast<double>(costed->transfer_bytes) / costed->steal_count
          : 0;
  *allowance_s = costed->steal_count *
                     2 * (cost_nic.latency_s + payload / cost_nic.max_bandwidth) +
                 0.05;

  Table table({"variant", "p95 s", "makespan s", "steals", "wire bytes"});
  table.AddRow({"no_steal", Table::Num(nosteal->p95_completion_s, 3),
                Table::Num(nosteal->makespan_s, 2),
                std::to_string(nosteal->steal_count),
                std::to_string(nosteal->transfer_bytes)});
  table.AddRow({"steal_free", Table::Num(free->p95_completion_s, 3),
                Table::Num(free->makespan_s, 2),
                std::to_string(free->steal_count),
                std::to_string(free->transfer_bytes)});
  table.AddRow({"steal_costed", Table::Num(costed->p95_completion_s, 3),
                Table::Num(costed->makespan_s, 2),
                std::to_string(costed->steal_count),
                std::to_string(costed->transfer_bytes)});
  table.Print();
  std::printf("\ncosted p95 bar: < no-steal p95 and <= free p95 + %.3fs "
              "modeled transfer allowance\n",
              *allowance_s);
  return costed->steal_count > 0 && costed->transfer_bytes > 0 &&
         costed->p95_completion_s < nosteal->p95_completion_s &&
         costed->p95_completion_s <=
             free->p95_completion_s + *allowance_s;
}

// ---------------------------------------------------------- Phase D

bool RunStreamingSlo(double* p95_s, double* attainment) {
  PrintHeader("Phase D: time-varying open-loop trace, interactive SLO");
  const double target_s = 0.5;
  std::vector<fleet::TraceJobClass> classes;
  fleet::TraceJobClass rpc;
  rpc.name = "rpc";
  rpc.weight = 0.8;
  rpc.cost_ns = 2e5;
  rpc.parallelism = 2;
  rpc.mean_elements = 8;
  rpc.slo = runtime::SloClass::kInteractive;
  rpc.latency_target_s = target_s;
  classes.push_back(rpc);
  fleet::TraceJobClass bulk;
  bulk.name = "bulk";
  bulk.weight = 0.2;
  bulk.cost_ns = 1e6;
  bulk.parallelism = 2;
  bulk.mean_elements = 16;  // kBatch, no deadline
  classes.push_back(bulk);

  fleet::TimeVaryingTraceOptions shape;
  shape.seed = 2026;
  shape.duration_s = 6;
  shape.base_rate = 40;
  shape.amplitude = 0.8;
  shape.period_s = 2;
  const fleet::ArrivalTrace trace =
      fleet::MakeTimeVaryingTrace(classes, shape);

  FleetSessionOptions options;
  for (int h = 0; h < kHosts; ++h) {
    MachineSpec machine;
    machine.name = "host" + std::to_string(h);
    machine.num_cores = 2;
    options.hosts.push_back(machine);
  }
  options.fleet.policy = fleet::DispatchPolicy::kSloAware;
  FleetSession cluster(std::move(options));
  fleet::TraceReplayOptions replay;
  replay.time_scale = 2.0;
  auto report = cluster.Replay(trace, replay);
  if (!report.ok() || report->failed_jobs > 0) {
    std::printf("streaming replay failed: %s\n",
                report.ok() ? "jobs failed"
                            : report.status().ToString().c_str());
    return false;
  }
  std::printf("%s", report->ToString().c_str());
  for (const fleet::FleetClassLatency& c : report->by_class) {
    if (c.slo != runtime::SloClass::kInteractive) continue;
    *p95_s = c.p95_completion_s;
    *attainment = c.attainment;
    std::printf("\ninteractive p95 %.3fs vs target %.3fs, attainment "
                "%.1f%% (bar: p95 <= target, attainment >= 95%%)\n",
                c.p95_completion_s, target_s, c.attainment * 100);
    return c.p95_completion_s <= target_s && c.attainment >= 0.95 &&
           c.shed_jobs == 0;
  }
  std::printf("no interactive class in replay report\n");
  return false;
}

}  // namespace

int main() {
  std::printf("BENCH_METRIC host_spin_rounds_per_ns %.6f\n",
              SpinRoundsPerNano());

  double bw_frac = 0;
  const bool phase_a = RunRemoteReadThroughput(&bw_frac);
  const bool phase_b = RunOptimizerDiagnosis();
  fleet::FleetReport nosteal, free_steal, costed;
  double allowance_s = 0;
  const bool phase_c =
      RunCostedStealing(&nosteal, &free_steal, &costed, &allowance_s);
  double stream_p95 = 0, stream_attainment = 0;
  const bool phase_d = RunStreamingSlo(&stream_p95, &stream_attainment);

  std::printf("BENCH_METRIC net.remote_read_bw_rel %.4f\n", bw_frac);
  std::printf("BENCH_METRIC net.nosteal_p95_latency_s %.4f\n",
              nosteal.p95_completion_s);
  std::printf("BENCH_METRIC net.steal_costed_p95_latency_s %.4f\n",
              costed.p95_completion_s);
  // The stealing win gates as a ratio (portable across hosts), capped
  // so one slow no-steal run cannot inflate the baseline.
  const double win = costed.p95_completion_s > 0
                         ? nosteal.p95_completion_s / costed.p95_completion_s
                         : 0;
  std::printf("BENCH_METRIC net.steal_win_rel %.4f\n", std::min(win, 3.0));
  std::printf("BENCH_METRIC net.steal_count %lld\n",
              (long long)costed.steal_count);
  std::printf("BENCH_METRIC net.streaming_interactive_p95_latency_s %.4f\n",
              stream_p95);
  std::printf("BENCH_METRIC net.streaming_attainment %.4f\n",
              stream_attainment);

  std::printf("\nphase gates: A=%d B=%d C=%d D=%d\n", phase_a, phase_b,
              phase_c, phase_d);
  return (phase_a && phase_b && phase_c && phase_d) ? 0 : 1;
}
