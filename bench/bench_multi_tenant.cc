// Multi-tenant executor bench: 4 heterogeneous jobs sharing one 8-core
// modeled machine, submitted concurrently through Session::Submit vs
// the same jobs run back-to-back with the blocking Flow::Run.
//
// Reports aggregate items/s for both modes and the per-job completion
// latency distribution (p50/p95 of submit -> finished) under
// concurrency. Expected shape: each job's configured demand (2-4
// workers) underuses the 8 cores alone, so overlapping the four jobs
// under the maximin arbiter lifts aggregate throughput well above the
// serialized baseline (the acceptance bar is >= 1.3x; the modeled
// kTimed UDFs make the ratio host-independent).
//
// BENCH_METRIC lines (higher is better) are gated by
// scripts/check_bench_regression.py against bench/baselines/.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/busy_work.h"
#include "src/util/cpu_timer.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

struct JobSpec {
  const char* name;
  const char* udf;
  double cost_ns;      // modeled per-element cost
  int parallelism;     // configured map workers
  int64_t elements;    // finite job size
};

// Heterogeneous mix: two heavy decoders, a medium augmenter, a light
// parser. Total configured demand = 10 workers on 8 cores, so the
// arbiter has real work under concurrency.
const JobSpec kJobs[] = {
    {"decode_a", "udf_heavy", 2.0e6, 3, 900},
    {"decode_b", "udf_heavy", 2.0e6, 3, 900},
    {"augment", "udf_medium", 1.0e6, 2, 700},
    {"parse", "udf_light", 0.5e6, 2, 900},
};

Session MakeSession() {
  SessionOptions so;
  so.machine.num_cores = 8;
  Session session(std::move(so));
  UdfSpec heavy;
  heavy.name = "udf_heavy";
  heavy.cost_ns_per_element = 2.0e6;
  (void)session.RegisterUdf(heavy);
  UdfSpec medium;
  medium.name = "udf_medium";
  medium.cost_ns_per_element = 1.0e6;
  (void)session.RegisterUdf(medium);
  UdfSpec light;
  light.name = "udf_light";
  light.cost_ns_per_element = 0.5e6;
  (void)session.RegisterUdf(light);
  return session;
}

Flow MakeFlow(Session& session, const JobSpec& spec) {
  return session.Range(spec.elements)
      .Map(spec.udf, spec.parallelism)
      .Named(std::string(spec.name) + "_map");
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[idx];
}

}  // namespace

int main() {
  std::printf("BENCH_METRIC host_spin_rounds_per_ns %.6f\n",
              SpinRoundsPerNano());
  PrintHeader(
      "Multi-tenant executor: 4 concurrent jobs vs serialized (8 cores)");

  RunOptions window;  // finite jobs: run each to the end
  window.max_seconds = 120;
  int64_t total_elements = 0;
  for (const JobSpec& spec : kJobs) total_elements += spec.elements;

  // -- Serialized baseline: blocking Run, back to back. A job's
  // completion latency includes waiting out every job ahead of it —
  // the run-to-completion cost Salus-style sharing removes.
  double serial_seconds = 0;
  std::vector<double> serial_completion_seconds;
  {
    Session session = MakeSession();
    const int64_t t0 = WallNanos();
    for (const JobSpec& spec : kJobs) {
      const auto report = MakeFlow(session, spec).Run(window);
      if (!report.ok() || !report->reached_end) {
        std::printf("serial job %s failed: %s\n", spec.name,
                    report.ok() ? "did not finish"
                                : report.status().ToString().c_str());
        return 1;
      }
      serial_completion_seconds.push_back((WallNanos() - t0) * 1e-9);
    }
    serial_seconds = (WallNanos() - t0) * 1e-9;
  }
  const double serial_rate = total_elements / serial_seconds;

  // -- Concurrent: submit all four, wait for all.
  double concurrent_seconds = 0;
  std::vector<double> completion_seconds;
  {
    Session session = MakeSession();
    const int64_t t0 = WallNanos();
    std::vector<JobHandle> handles;
    for (const JobSpec& spec : kJobs) {
      JobOptions jopts;
      jopts.run = window;
      jopts.name = spec.name;
      handles.push_back(session.Submit(MakeFlow(session, spec), jopts));
    }
    for (JobHandle& handle : handles) {
      const auto report = handle.Wait();
      if (!report.ok() || !report->reached_end) {
        std::printf("concurrent job %s failed: %s\n", handle.name().c_str(),
                    report.ok() ? "did not finish"
                                : report.status().ToString().c_str());
        return 1;
      }
      // Completion = admission wait + execution (submit -> finished).
      completion_seconds.push_back(report->queue_seconds +
                                   report->wall_seconds);
    }
    concurrent_seconds = (WallNanos() - t0) * 1e-9;
  }
  const double concurrent_rate = total_elements / concurrent_seconds;
  const double speedup = concurrent_rate / serial_rate;
  const double p50 = Percentile(completion_seconds, 0.50);
  const double p95 = Percentile(completion_seconds, 0.95);

  Table table({"mode", "wall s", "items/s", "p50 completion s",
               "p95 completion s"});
  table.AddRow({"serialized (Run)", Table::Num(serial_seconds, 2),
                Table::Num(serial_rate, 0),
                Table::Num(Percentile(serial_completion_seconds, 0.50), 2),
                Table::Num(Percentile(serial_completion_seconds, 0.95), 2)});
  table.AddRow({"concurrent (Submit)", Table::Num(concurrent_seconds, 2),
                Table::Num(concurrent_rate, 0), Table::Num(p50, 2),
                Table::Num(p95, 2)});
  table.Print();
  std::printf("\naggregate speedup: %.2fx (acceptance bar: >= 1.3x)\n",
              speedup);

  std::printf("BENCH_METRIC multi_tenant.serial_items_per_s %.2f\n",
              serial_rate);
  std::printf("BENCH_METRIC multi_tenant.concurrent_items_per_s %.2f\n",
              concurrent_rate);
  std::printf("BENCH_METRIC multi_tenant.speedup_rel %.4f\n", speedup);
  // Completion latencies gate as inverse rates so every gated metric
  // stays higher-is-better.
  std::printf("BENCH_METRIC multi_tenant.p50_completions_per_s %.4f\n",
              p50 > 0 ? 1.0 / p50 : 0.0);
  std::printf("BENCH_METRIC multi_tenant.p95_completions_per_s %.4f\n",
              p95 > 0 ? 1.0 / p95 : 0.0);
  return speedup >= 1.3 ? 0 : 1;
}
