// Multi-tenant executor bench: 4 heterogeneous jobs sharing one 8-core
// modeled machine, submitted concurrently through Session::Submit vs
// the same jobs run back-to-back with the blocking Flow::Run.
//
// Reports aggregate items/s for both modes and the per-job completion
// latency distribution (p50/p95 of submit -> finished) under
// concurrency. Expected shape: each job's configured demand (2-4
// workers) underuses the 8 cores alone, so overlapping the four jobs
// under the maximin arbiter lifts aggregate throughput well above the
// serialized baseline (the acceptance bar is >= 1.3x; the modeled
// kTimed UDFs make the ratio host-independent).
//
// A second scenario exercises SLO-aware scheduling: three long batch
// jobs share the machine with a closed-loop stream of short
// interactive jobs, once with slo_preemption off (flat fair share) and
// once on (interactive tier parks batch pools to their floor). The
// bench self-checks the headline property of docs/scheduling.md —
// interactive p95 completion improves >= 2x under preemption while
// batch throughput gives up <= 15% — and reports the preemption-on
// arm's metrics for the regression gate
// (multi_tenant.interactive_p95_latency_s gates on increase,
// multi_tenant.batch_items_per_s on drops).
//
// BENCH_METRIC lines (higher is better unless suffixed _latency_s) are
// gated by scripts/check_bench_regression.py against bench/baselines/.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/busy_work.h"
#include "src/util/cpu_timer.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

struct JobSpec {
  const char* name;
  const char* udf;
  double cost_ns;      // modeled per-element cost
  int parallelism;     // configured map workers
  int64_t elements;    // finite job size
};

// Heterogeneous mix: two heavy decoders, a medium augmenter, a light
// parser. Total configured demand = 10 workers on 8 cores, so the
// arbiter has real work under concurrency.
const JobSpec kJobs[] = {
    {"decode_a", "udf_heavy", 2.0e6, 3, 900},
    {"decode_b", "udf_heavy", 2.0e6, 3, 900},
    {"augment", "udf_medium", 1.0e6, 2, 700},
    {"parse", "udf_light", 0.5e6, 2, 900},
};

Session MakeSession() {
  SessionOptions so;
  so.machine.num_cores = 8;
  Session session(std::move(so));
  UdfSpec heavy;
  heavy.name = "udf_heavy";
  heavy.cost_ns_per_element = 2.0e6;
  (void)session.RegisterUdf(heavy);
  UdfSpec medium;
  medium.name = "udf_medium";
  medium.cost_ns_per_element = 1.0e6;
  (void)session.RegisterUdf(medium);
  UdfSpec light;
  light.name = "udf_light";
  light.cost_ns_per_element = 0.5e6;
  (void)session.RegisterUdf(light);
  return session;
}

Flow MakeFlow(Session& session, const JobSpec& spec) {
  return session.Range(spec.elements)
      .Map(spec.udf, spec.parallelism)
      .Named(std::string(spec.name) + "_map");
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[idx];
}

// -- Mixed-class scenario -------------------------------------------
// Three infinite batch jobs (4-worker knob, 2ms elements) plus a
// closed-loop stream of interactive jobs (96 elements x 5ms, 8-worker
// knob) on 8 modeled cores. Flat fair share splits the machine four
// ways (~2 workers for the interactive job -> ~240ms); preemption
// grants the interactive tier everything but the three batch floors
// (5 workers -> ~96ms) while each batch job keeps its floor worker.

struct MixedClassResult {
  double interactive_p50_s = 0;
  double interactive_p95_s = 0;
  double batch_items_per_s = 0;
};

bool RunMixedClassArm(bool preemption, MixedClassResult* out) {
  constexpr int kBatchJobs = 3;
  constexpr int kInteractiveJobs = 10;
  constexpr int64_t kInteractiveElements = 120;

  SessionOptions so;
  so.machine.num_cores = 8;
  so.slo_preemption = preemption;
  Session session(std::move(so));
  UdfSpec batch_udf;
  batch_udf.name = "udf_batch";
  batch_udf.cost_ns_per_element = 2.0e6;
  (void)session.RegisterUdf(batch_udf);
  UdfSpec inter_udf;
  inter_udf.name = "udf_inter";
  inter_udf.cost_ns_per_element = 5.0e6;
  (void)session.RegisterUdf(inter_udf);

  RunOptions batch_window;
  batch_window.max_seconds = 120;  // failsafe; the bench cancels
  std::vector<JobHandle> batch_jobs;
  for (int i = 0; i < kBatchJobs; ++i) {
    JobOptions jopts;
    jopts.run = batch_window;
    jopts.name = "batch_" + std::to_string(i);
    // SloClass::kBatch is the default.
    batch_jobs.push_back(session.Submit(
        session.Range(1 << 30).Map("udf_batch", 4).Named("bmap"), jopts));
  }
  // Let every batch job reach steady state before the first arrival.
  const auto warm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (JobHandle& job : batch_jobs) {
    while (job.Progress().batches == 0 &&
           std::chrono::steady_clock::now() < warm_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (job.Progress().batches == 0) {
      std::printf("mixed-class: batch job never started\n");
      return false;
    }
  }

  int64_t batch_elements_start = 0;
  for (JobHandle& job : batch_jobs) {
    batch_elements_start += job.Progress().elements;
  }
  const int64_t t0 = WallNanos();

  // Open-loop arrivals: one interactive job every kPeriod, long enough
  // for either arm to finish each job before the next arrives. The
  // idle tail of each period is when preemption pays twice — the
  // interactive job leaves sooner, so the batch pools run restored
  // (not parked) for most of the window.
  constexpr auto kPeriod = std::chrono::milliseconds(800);
  std::vector<double> interactive_completion_s;
  RunOptions inter_window;
  inter_window.max_seconds = 60;
  const auto loop_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kInteractiveJobs; ++i) {
    std::this_thread::sleep_until(loop_start + i * kPeriod);
    JobOptions jopts;
    jopts.run = inter_window;
    jopts.name = "inter_" + std::to_string(i);
    jopts.slo = SloClass::kInteractive;
    jopts.latency_target_s = 0.2;
    JobHandle job = session.Submit(
        session.Range(kInteractiveElements).Map("udf_inter", 8).Named("imap"),
        jopts);
    const auto report = job.Wait();
    if (!report.ok() || !report->reached_end) {
      std::printf("mixed-class: interactive job failed: %s\n",
                  report.ok() ? "did not finish"
                              : report.status().ToString().c_str());
      return false;
    }
    interactive_completion_s.push_back(report->queue_seconds +
                                       report->wall_seconds);
  }

  const double window_s = (WallNanos() - t0) * 1e-9;
  int64_t batch_elements_end = 0;
  for (JobHandle& job : batch_jobs) {
    batch_elements_end += job.Progress().elements;
  }
  for (JobHandle& job : batch_jobs) job.Cancel();
  for (JobHandle& job : batch_jobs) (void)job.Wait();

  out->interactive_p50_s = Percentile(interactive_completion_s, 0.50);
  out->interactive_p95_s = Percentile(interactive_completion_s, 0.95);
  out->batch_items_per_s =
      (batch_elements_end - batch_elements_start) / window_s;
  return true;
}

}  // namespace

int main() {
  std::printf("BENCH_METRIC host_spin_rounds_per_ns %.6f\n",
              SpinRoundsPerNano());
  PrintHeader(
      "Multi-tenant executor: 4 concurrent jobs vs serialized (8 cores)");

  RunOptions window;  // finite jobs: run each to the end
  window.max_seconds = 120;
  int64_t total_elements = 0;
  for (const JobSpec& spec : kJobs) total_elements += spec.elements;

  // -- Serialized baseline: blocking Run, back to back. A job's
  // completion latency includes waiting out every job ahead of it —
  // the run-to-completion cost Salus-style sharing removes.
  double serial_seconds = 0;
  std::vector<double> serial_completion_seconds;
  {
    Session session = MakeSession();
    const int64_t t0 = WallNanos();
    for (const JobSpec& spec : kJobs) {
      const auto report = MakeFlow(session, spec).Run(window);
      if (!report.ok() || !report->reached_end) {
        std::printf("serial job %s failed: %s\n", spec.name,
                    report.ok() ? "did not finish"
                                : report.status().ToString().c_str());
        return 1;
      }
      serial_completion_seconds.push_back((WallNanos() - t0) * 1e-9);
    }
    serial_seconds = (WallNanos() - t0) * 1e-9;
  }
  const double serial_rate = total_elements / serial_seconds;

  // -- Concurrent: submit all four, wait for all.
  double concurrent_seconds = 0;
  std::vector<double> completion_seconds;
  {
    Session session = MakeSession();
    const int64_t t0 = WallNanos();
    std::vector<JobHandle> handles;
    for (const JobSpec& spec : kJobs) {
      JobOptions jopts;
      jopts.run = window;
      jopts.name = spec.name;
      handles.push_back(session.Submit(MakeFlow(session, spec), jopts));
    }
    for (JobHandle& handle : handles) {
      const auto report = handle.Wait();
      if (!report.ok() || !report->reached_end) {
        std::printf("concurrent job %s failed: %s\n", handle.name().c_str(),
                    report.ok() ? "did not finish"
                                : report.status().ToString().c_str());
        return 1;
      }
      // Completion = admission wait + execution (submit -> finished).
      completion_seconds.push_back(report->queue_seconds +
                                   report->wall_seconds);
    }
    concurrent_seconds = (WallNanos() - t0) * 1e-9;
  }
  const double concurrent_rate = total_elements / concurrent_seconds;
  const double speedup = concurrent_rate / serial_rate;
  const double p50 = Percentile(completion_seconds, 0.50);
  const double p95 = Percentile(completion_seconds, 0.95);

  Table table({"mode", "wall s", "items/s", "p50 completion s",
               "p95 completion s"});
  table.AddRow({"serialized (Run)", Table::Num(serial_seconds, 2),
                Table::Num(serial_rate, 0),
                Table::Num(Percentile(serial_completion_seconds, 0.50), 2),
                Table::Num(Percentile(serial_completion_seconds, 0.95), 2)});
  table.AddRow({"concurrent (Submit)", Table::Num(concurrent_seconds, 2),
                Table::Num(concurrent_rate, 0), Table::Num(p50, 2),
                Table::Num(p95, 2)});
  table.Print();
  std::printf("\naggregate speedup: %.2fx (acceptance bar: >= 1.3x)\n",
              speedup);

  std::printf("BENCH_METRIC multi_tenant.serial_items_per_s %.2f\n",
              serial_rate);
  std::printf("BENCH_METRIC multi_tenant.concurrent_items_per_s %.2f\n",
              concurrent_rate);
  std::printf("BENCH_METRIC multi_tenant.speedup_rel %.4f\n", speedup);
  // Completion latencies gate as inverse rates so every gated metric
  // stays higher-is-better.
  std::printf("BENCH_METRIC multi_tenant.p50_completions_per_s %.4f\n",
              p50 > 0 ? 1.0 / p50 : 0.0);
  std::printf("BENCH_METRIC multi_tenant.p95_completions_per_s %.4f\n",
              p95 > 0 ? 1.0 / p95 : 0.0);

  // -- Mixed-class scenario: preemption off vs on.
  PrintHeader(
      "SLO scheduling: interactive stream vs 3 batch jobs (8 cores)");
  MixedClassResult flat, slo;
  if (!RunMixedClassArm(/*preemption=*/false, &flat)) return 1;
  if (!RunMixedClassArm(/*preemption=*/true, &slo)) return 1;

  Table slo_table({"mode", "inter p50 s", "inter p95 s", "batch items/s"});
  slo_table.AddRow({"flat fair share", Table::Num(flat.interactive_p50_s, 3),
                    Table::Num(flat.interactive_p95_s, 3),
                    Table::Num(flat.batch_items_per_s, 0)});
  slo_table.AddRow({"slo preemption", Table::Num(slo.interactive_p50_s, 3),
                    Table::Num(slo.interactive_p95_s, 3),
                    Table::Num(slo.batch_items_per_s, 0)});
  slo_table.Print();

  const double p95_improvement =
      slo.interactive_p95_s > 0
          ? flat.interactive_p95_s / slo.interactive_p95_s
          : 0.0;
  const double batch_retained =
      flat.batch_items_per_s > 0
          ? slo.batch_items_per_s / flat.batch_items_per_s
          : 0.0;
  std::printf(
      "\ninteractive p95 improvement: %.2fx (bar: >= 2x); batch "
      "throughput retained: %.0f%% (bar: >= 85%%)\n",
      p95_improvement, batch_retained * 100);

  // The regression gate watches the preemption-on arm: interactive p95
  // gates on increase (latency suffix), batch throughput on drops. The
  // cross-arm ratios travel across hosts as _rel metrics.
  std::printf("BENCH_METRIC multi_tenant.interactive_p95_latency_s %.4f\n",
              slo.interactive_p95_s);
  std::printf("BENCH_METRIC multi_tenant.batch_items_per_s %.2f\n",
              slo.batch_items_per_s);
  std::printf("BENCH_METRIC multi_tenant.preemption_p95_speedup_rel %.4f\n",
              p95_improvement);
  std::printf("BENCH_METRIC multi_tenant.preemption_batch_retained_rel %.4f\n",
              batch_retained);

  const bool throughput_ok = speedup >= 1.3;
  const bool slo_ok = p95_improvement >= 2.0 && batch_retained >= 0.85;
  if (!throughput_ok) {
    std::printf("FAIL: concurrent speedup %.2fx below the 1.3x bar\n",
                speedup);
  }
  if (!slo_ok) {
    std::printf(
        "FAIL: SLO scenario missed its bars (p95 %.2fx, batch %.0f%%)\n",
        p95_improvement, batch_retained * 100);
  }
  return throughput_ok && slo_ok ? 0 : 1;
}
