// Reproduces Fig. 7: at each Plumber optimization step on ResNet,
// compare observed rate against the LP upper bound, the "local"
// allocator estimate, and AUTOTUNE's estimate. Expected shape: the LP
// bounds the observed rate within ~2x and tightens over time; the local
// estimate oscillates with the bottleneck; AUTOTUNE's estimate is
// unbounded / resource-oblivious.
#include <cstdio>

#include "bench/bench_util.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

void RunSetup(const MachineSpec& machine, int steps) {
  PrintHeader("Figure 7: ResNet LP predictions (" + machine.name + ")");
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload("resnet18")).value();
  const GraphDef naive = NaiveConfiguration(workload.graph);
  StepSeriesOptions options;
  options.steps = steps;
  options.machine = machine;
  options.measure_seconds = 0.15;
  auto tuner = MakePlumberStepTuner();
  const auto series = RunStepTuning(env, naive, tuner.get(), options);

  Table table({"step", "observed", "LP max", "local max", "autotune est",
               "LP/observed"});
  for (const auto& p : series) {
    table.AddRow({std::to_string(p.step), Table::Num(p.observed_rate),
                  Table::Num(p.lp_predicted), Table::Num(p.local_predicted),
                  Table::Num(p.autotune_predicted),
                  Table::Num(p.observed_rate > 0
                                 ? p.lp_predicted / p.observed_rate
                                 : 0)});
  }
  table.Print();

  // Bound quality at convergence (paper: within 2x for ResNet).
  const auto& last = series.back();
  std::printf("final LP/observed ratio: %.2f (paper: <= ~2)\n",
              last.observed_rate > 0 ? last.lp_predicted / last.observed_rate
                                     : 0.0);
}

}  // namespace

int main() {
  RunSetup(MachineSpec::SetupA(), 20);
  RunSetup(MachineSpec::SetupB(), 20);
  return 0;
}
