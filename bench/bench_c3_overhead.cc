// Reproduces Appendix C.3: the cost of Plumber's tracing. Runs each
// workload in the HEURISTIC configuration with tracing enabled vs
// disabled. Expected shape: overhead is small for vision workloads and
// larger for text workloads, whose per-element work is so small that
// the per-Next accounting is not amortized (paper: ~5% average on
// Setup A, ~19-21% on Transformer/GNMT, larger on Setup B).
#include <cstdio>

#include "bench/bench_util.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

double MeasureWithTracing(const std::string& name,
                          const MachineSpec& machine, bool tracing) {
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload(name)).value();
  const GraphDef tuned =
      HeuristicConfiguration(workload.graph, machine.num_cores);
  PipelineOptions popts = env.MakePipelineOptions(machine.cpu_scale);
  popts.tracing_enabled = tracing;
  auto pipeline = std::move(Pipeline::Create(tuned, popts)).value();
  RunOptions ropts;
  ropts.max_seconds = 0.4;
  ropts.warmup_batches = 2;
  const RunResult result = RunPipeline(*pipeline, ropts);
  pipeline->Cancel();
  return result.batches_per_second;
}

void RunSetup(const MachineSpec& machine) {
  PrintHeader("Appendix C.3: tracing overhead (" + machine.name + ")");
  Table table({"workload", "untraced mb/s", "traced mb/s", "slowdown"});
  RunningStat slowdowns;
  for (const std::string name :
       {"resnet18", "rcnn", "multibox_ssd", "transformer", "gnmt"}) {
    const double off = MeasureWithTracing(name, machine, false);
    const double on = MeasureWithTracing(name, machine, true);
    const double slowdown = on > 0 ? (off - on) / off : 0;
    slowdowns.Add(slowdown);
    table.AddRow({name, Table::Num(off, 1), Table::Num(on, 1),
                  Table::Num(100 * slowdown, 1) + "%"});
  }
  table.Print();
  std::printf("average slowdown: %.1f%% (paper: ~5%% on A, ~10%% on B;\n"
              "text workloads dominate the overhead)\n",
              100 * slowdowns.mean());
}

}  // namespace

int main() {
  RunSetup(MachineSpec::SetupA());
  RunSetup(MachineSpec::SetupB());
  return 0;
}
