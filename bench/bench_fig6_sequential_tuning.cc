// Reproduces Fig. 6: sequential tuning of the ResNet pipeline on Setups
// A and B — Plumber's bottleneck-ranked steps vs. a random walk, with
// AUTOTUNE and HEURISTIC final configurations as reference lines.
// Expected shape: Plumber reaches peak throughput in 2-3x fewer steps
// than the random walk; AUTOTUNE ~= HEURISTIC at the plateau.
#include <cstdio>

#include "bench/bench_util.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

void RunSetup(const MachineSpec& machine, int steps, int reps) {
  PrintHeader("Figure 6: ResNet sequential tuning (" + machine.name + ")");
  Session session = MakeWorkloadSession(machine);
  auto workload = std::move(MakeWorkload("resnet18")).value();
  const GraphDef naive = NaiveConfiguration(workload.graph);

  StepSeriesOptions options;
  options.steps = steps;
  options.machine = machine;
  options.measure_seconds = 0.12;

  // Reference lines: heuristic and autotune final configurations.
  const GraphDef heuristic =
      HeuristicConfiguration(workload.graph, machine.num_cores);
  const double heuristic_rate = MeasureRate(session, heuristic, 0.4);
  // AUTOTUNE needs a trace of the naive pipeline first.
  auto model = std::move(session.FromGraph(naive).Diagnose(0.2)).value();
  AutotuneOptions aopts;
  aopts.max_parallelism = machine.num_cores;
  auto autotuned = std::move(AutotuneConfiguration(naive, model, aopts)).value();
  const double autotune_rate = MeasureRate(session, autotuned.graph, 0.4);

  // Step series, averaged over reps.
  std::vector<RunningStat> plumber_stats(steps), random_stats(steps);
  for (int rep = 0; rep < reps; ++rep) {
    options.seed = 100 + rep;
    auto plumber_tuner = MakePlumberStepTuner();
    const auto plumber_series =
        RunStepTuning(session, naive, plumber_tuner.get(), options);
    for (const auto& p : plumber_series) {
      plumber_stats[p.step].Add(p.observed_rate);
    }
    auto random_tuner = MakeRandomWalkTuner();
    const auto random_series =
        RunStepTuning(session, naive, random_tuner.get(), options);
    for (const auto& p : random_series) {
      random_stats[p.step].Add(p.observed_rate);
    }
  }

  Table table({"step", "plumber mb/s", "+-95%", "random mb/s", "+-95%",
               "autotune", "heuristic"});
  for (int s = 0; s < steps; ++s) {
    table.AddRow({std::to_string(s), Table::Num(plumber_stats[s].mean()),
                  Table::Num(plumber_stats[s].ConfidenceInterval95()),
                  Table::Num(random_stats[s].mean()),
                  Table::Num(random_stats[s].ConfidenceInterval95()),
                  Table::Num(autotune_rate), Table::Num(heuristic_rate)});
  }
  table.Print();

  // Convergence comparison: steps for each tuner to reach 90% of the
  // plumber plateau (the paper's "2-3x fewer steps" claim). A crossing
  // must be sustained for two consecutive steps so a single noisy
  // measurement does not count as convergence; a tuner that never
  // sustains the threshold is censored at the window length.
  const double plateau =
      (plumber_stats[steps - 1].mean() + plumber_stats[steps - 2].mean()) / 2;
  auto steps_to_converge = [&](const std::vector<RunningStat>& stats) {
    for (int s = 0; s + 1 < steps; ++s) {
      if (stats[s].mean() >= 0.9 * plateau &&
          stats[s + 1].mean() >= 0.9 * plateau) {
        return s;
      }
    }
    return steps;  // censored
  };
  const int plumber_steps = steps_to_converge(plumber_stats);
  const int random_steps = steps_to_converge(random_stats);
  const bool censored = random_steps == steps;
  std::printf(
      "steps to 90%% of plumber plateau: plumber=%d random=%s%d "
      "(ratio >= %.1fx)\n",
      plumber_steps, censored ? ">" : "", censored ? steps - 1 : random_steps,
      plumber_steps > 0 ? static_cast<double>(random_steps) / plumber_steps
                        : 0.0);
}

}  // namespace

int main() {
  RunSetup(MachineSpec::SetupA(), /*steps=*/28, /*reps=*/2);
  RunSetup(MachineSpec::SetupB(), /*steps=*/28, /*reps=*/2);
  return 0;
}
