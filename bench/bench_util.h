// Shared harness code for the figure-reproduction benchmarks.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/plumber.h"
#include "src/tuners/autotune.h"
#include "src/tuners/tuner.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workloads/workloads.h"

#ifdef __linux__
#include <sched.h>
#endif

namespace plumber {
namespace bench {

// Restricts the whole process to the first `n` CPUs for its lifetime,
// then restores the previous mask. This is how the paper's
// MultiBoxSSD(48) appendix run works: half the machine's cores are
// disabled for scheduling, so over-allocating tuners oversubscribe
// while resource-aware allocation does not.
class ScopedCpuAffinity {
 public:
  explicit ScopedCpuAffinity(int n) {
#ifdef __linux__
    if (sched_getaffinity(0, sizeof(previous_), &previous_) != 0) return;
    saved_ = true;
    cpu_set_t mask;
    CPU_ZERO(&mask);
    for (int cpu = 0; cpu < n && cpu < CPU_SETSIZE; ++cpu) {
      CPU_SET(cpu, &mask);
    }
    applied_ = sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
    (void)n;
#endif
  }
  ~ScopedCpuAffinity() {
#ifdef __linux__
    if (saved_) sched_setaffinity(0, sizeof(previous_), &previous_);
#endif
  }
  bool applied() const { return applied_; }

  ScopedCpuAffinity(const ScopedCpuAffinity&) = delete;
  ScopedCpuAffinity& operator=(const ScopedCpuAffinity&) = delete;

 private:
#ifdef __linux__
  cpu_set_t previous_;
#endif
  bool saved_ = false;
  bool applied_ = false;
};

// One measured optimization step (the x-axis of Figs. 6-9/13).
struct StepPoint {
  int step = 0;
  double observed_rate = 0;       // minibatches/sec
  double lp_predicted = 0;        // Plumber LP upper bound
  double local_predicted = 0;     // "local" allocator estimate
  double autotune_predicted = 0;  // AUTOTUNE's unbounded estimate
  std::string action;             // node the tuner touched
};

struct StepSeriesOptions {
  int steps = 20;
  double measure_seconds = 0.12;
  MachineSpec machine = MachineSpec::SetupA();
  uint64_t seed = 1;
};

// Runs the sequential-tuning protocol of §5.1: start from the given
// configuration; each step, measure + trace the current pipeline, record
// predictions, then let the tuner pick the next configuration. The
// session's machine is the machine being tuned for.
inline std::vector<StepPoint> RunStepTuning(Session& session, GraphDef graph,
                                            StepTuner* tuner,
                                            const StepSeriesOptions& options) {
  std::vector<StepPoint> series;
  Rng rng(options.seed);
  for (int step = 0; step < options.steps; ++step) {
    auto model_or =
        session.FromGraph(graph).Diagnose(options.measure_seconds);
    if (!model_or.ok()) break;
    const PipelineModel& model = *model_or;

    StepPoint point;
    point.step = step;
    point.observed_rate = model.observed_rate();
    point.lp_predicted = PlanAllocation(model).predicted_rate;
    point.local_predicted = LocalEstimateMaxRate(model);
    point.autotune_predicted = AutotuneEstimateRate(model);
    series.push_back(point);

    if (tuner != nullptr) {
      TunerContext ctx;
      ctx.model = &model;
      ctx.machine = session.machine();
      ctx.rng = &rng;
      auto next = tuner->Step(graph, ctx);
      if (!next.ok()) break;
      graph = std::move(next).value();
    }
  }
  return series;
}

// Pre-Session variant kept for benches still on the hand-wired layer.
inline std::vector<StepPoint> RunStepTuning(WorkloadEnv& env,
                                            GraphDef graph, StepTuner* tuner,
                                            const StepSeriesOptions& options) {
  std::vector<StepPoint> series;
  Rng rng(options.seed);
  for (int step = 0; step < options.steps; ++step) {
    auto pipeline_or = Pipeline::Create(
        graph, env.MakePipelineOptions(options.machine.cpu_scale));
    if (!pipeline_or.ok()) break;
    auto& pipeline = **pipeline_or;
    TraceOptions topts;
    topts.trace_seconds = options.measure_seconds;
    topts.machine = options.machine;
    const TraceSnapshot trace = CaptureTrace(pipeline, topts);
    pipeline.Cancel();
    auto model_or = PipelineModel::Build(trace, &env.udfs);
    if (!model_or.ok()) break;
    const PipelineModel& model = *model_or;

    StepPoint point;
    point.step = step;
    point.observed_rate = model.observed_rate();
    point.lp_predicted = PlanAllocation(model).predicted_rate;
    point.local_predicted = LocalEstimateMaxRate(model);
    point.autotune_predicted = AutotuneEstimateRate(model);
    series.push_back(point);

    if (tuner != nullptr) {
      TunerContext ctx;
      ctx.model = &model;
      ctx.machine = options.machine;
      ctx.rng = &rng;
      auto next = tuner->Step(graph, ctx);
      if (!next.ok()) break;
      graph = std::move(next).value();
    }
  }
  return series;
}

// Measures the steady-state rate of a fixed configuration through the
// unified API. The warmup window runs on the same iterator tree (so
// caches fill) but is excluded from the measurement.
inline double MeasureRate(Session& session, const GraphDef& graph,
                          double seconds, double model_step_seconds = 0,
                          double warmup_seconds = 0) {
  RunOptions window;
  window.max_seconds = seconds;
  window.model_step_seconds = model_step_seconds;
  window.warmup_seconds = warmup_seconds;
  const auto report = session.FromGraph(graph).Run(window);
  if (!report.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 report.status().ToString().c_str());
    return 0;
  }
  return report->batches_per_second;
}

// Pre-Session variant kept for benches still on the hand-wired layer.
inline double MeasureRate(WorkloadEnv& env, const GraphDef& graph,
                          const MachineSpec& machine, double seconds,
                          double model_step_seconds = 0,
                          uint64_t memory_budget = 0,
                          double warmup_seconds = 0) {
  auto pipeline_or = Pipeline::Create(
      graph, env.MakePipelineOptions(machine.cpu_scale, memory_budget));
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n",
                 pipeline_or.status().ToString().c_str());
    return 0;
  }
  auto iterator_or = (*pipeline_or)->MakeIterator();
  if (!iterator_or.ok()) return 0;
  auto iterator = std::move(iterator_or).value();
  if (warmup_seconds > 0) {
    RunOptions warmup;
    warmup.max_seconds = warmup_seconds;
    warmup.model_step_seconds = model_step_seconds;
    RunIterator(iterator.get(), warmup);
  }
  RunOptions ropts;
  ropts.max_seconds = seconds;
  ropts.model_step_seconds = model_step_seconds;
  const RunResult result = RunIterator(iterator.get(), ropts);
  (*pipeline_or)->Cancel();
  return result.batches_per_second;
}

inline double MeanRate(const std::vector<StepPoint>& series, int from,
                       int to) {
  RunningStat stat;
  for (const auto& p : series) {
    if (p.step >= from && p.step < to) stat.Add(p.observed_rate);
  }
  return stat.mean();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace bench
}  // namespace plumber
