// Reproduces §5.3 (Observation 8): memory / cache-size estimation.
//   1. Source dataset sizes: Plumber's estimate vs ground truth for
//      every dataset (paper: exact for full sweeps).
//   2. Subsampling: tracing only ~1% of files (by stopping early) still
//      estimates the dataset size within a few percent.
//   3. Materialized sizes: decode amplification (~6x for ImageNet-style
//      decode) and the MultiBoxSSD filter's <1% reduction, with error
//      decreasing as tracing time grows.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/datagen.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

PipelineModel TraceWorkload(WorkloadEnv& env, const GraphDef& graph,
                            double seconds, int64_t max_batches = 0) {
  auto pipeline = std::move(Pipeline::Create(
                                graph, env.MakePipelineOptions()))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = seconds;
  topts.max_batches = max_batches;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  return std::move(PipelineModel::Build(trace, &env.udfs)).value();
}

void SourceSizes() {
  PrintHeader("Obs. 8: source dataset size estimates (full sweep)");
  Table table({"dataset", "true bytes", "estimated", "rel err"});
  for (const auto& [workload_name, prefix] :
       std::vector<std::pair<std::string, std::string>>{
           {"resnet18", "imagenet/train-"},
           {"rcnn", "coco/train-"},
           {"transformer", "wmt17/train-"},
           {"gnmt", "wmt16/train-"}}) {
    WorkloadEnv env;
    auto workload = std::move(MakeWorkload(workload_name)).value();
    const double truth =
        static_cast<double>(DatasetBytes(env.fs, prefix));
    // Long trace sweeps the whole (scaled) dataset at least once.
    const GraphDef tuned = HeuristicConfiguration(workload.graph, 16);
    const PipelineModel model = TraceWorkload(env, tuned, 2.0);
    const auto est = model.EstimateSourceSizes().at(prefix);
    const double err = std::abs(est.estimated_bytes - truth) / truth;
    table.AddRow({prefix, Table::Num(truth, 0),
                  Table::Num(est.estimated_bytes, 0),
                  Table::Num(100 * err, 2) + "%"});
  }
  table.Print();
}

void Subsampling() {
  PrintHeader("Obs. 8: subsampled size estimation (early-stopped traces)");
  Table table({"dataset", "batches traced", "files seen", "rel err"});
  for (const int64_t batches : {2, 5, 10, 40}) {
    WorkloadEnv env;
    auto workload = std::move(MakeWorkload("resnet18")).value();
    const double truth =
        static_cast<double>(DatasetBytes(env.fs, "imagenet/train-"));
    const PipelineModel model = TraceWorkload(
        env, NaiveConfiguration(workload.graph), 5.0, batches);
    const auto est = model.EstimateSourceSizes().at("imagenet/train-");
    const double err = std::abs(est.estimated_bytes - truth) / truth;
    table.AddRow({"imagenet/train-", std::to_string(batches),
                  std::to_string(est.files_seen) + "/" +
                      std::to_string(est.files_total),
                  Table::Num(100 * err, 2) + "%"});
  }
  table.Print();
  std::printf("Paper reference: 1%% of files -> ~1%% relative error.\n");
}

void Materialization() {
  PrintHeader("Obs. 8: materialized-size estimates vs tracing time");
  // ResNet unfused: decode amplifies bytes ~6x; the estimate of the
  // decoded dataset should approach 6x the source size as tracing time
  // grows (paper: 6% error at 60s, <1% at 2min on full-size data).
  Table table({"trace budget", "est decode bytes", "true-ish (6x src)",
               "rel err", "ssd filter keep"});
  for (const double seconds : {0.1, 0.25, 0.5, 1.5}) {
    WorkloadEnv env;
    auto resnet = std::move(MakeWorkload("resnet18")).value();
    const double source_truth =
        64 * 120 * 1100.0;  // payload bytes (approx; excludes framing)
    const PipelineModel model = TraceWorkload(
        env, HeuristicConfiguration(resnet.graph, 16), seconds);
    const NodeModel* decode = model.Find("decode");
    const double est = decode != nullptr ? decode->materialized_bytes : 0;
    const double truth = 6.0 * source_truth;
    const double err = std::abs(est - truth) / truth;

    // MultiBoxSSD filter reduction, same budget.
    WorkloadEnv ssd_env;
    auto ssd = std::move(MakeWorkload("multibox_ssd")).value();
    const PipelineModel ssd_model = TraceWorkload(
        ssd_env, HeuristicConfiguration(ssd.graph, 16), seconds);
    const NodeModel* filter = ssd_model.Find("filter");
    const NodeModel* ssd_decode = ssd_model.Find("decode");
    double keep = 0;
    if (filter != nullptr && ssd_decode != nullptr &&
        ssd_decode->completions > 0) {
      keep = static_cast<double>(filter->completions) /
             ssd_decode->completions;
    }
    table.AddRow({Table::Num(seconds, 2) + "s", Table::Num(est, 0),
                  Table::Num(truth, 0), Table::Num(100 * err, 1) + "%",
                  Table::Num(100 * keep, 1) + "%"});
  }
  table.Print();
  std::printf(
      "Paper reference: decode amplification ~6x; filter reduces the\n"
      "dataset by <1%%; error decreases with tracing time.\n");
}

void CachePlacements() {
  PrintHeader("Obs. 8: cache placement across memory budgets (resnet18)");
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload("resnet18")).value();
  const PipelineModel model = TraceWorkload(
      env, HeuristicConfiguration(workload.graph, 16), 1.0);
  Table table({"memory budget", "cache decision", "materialized bytes"});
  for (const double mb : {0.5, 2.0, 10.0, 60.0, 120.0}) {
    CachePlanOptions copts;
    copts.memory_bytes = static_cast<uint64_t>(mb * 1e6);
    const CacheDecision decision = PlanCache(model, copts);
    table.AddRow({Table::Num(mb, 1) + " MB",
                  decision.feasible ? decision.node : "(none fits)",
                  decision.feasible
                      ? Table::Num(decision.materialized_bytes, 0)
                      : "-"});
  }
  table.Print();
  std::printf(
      "Expected: tiny budgets fit nothing; mid budgets cache the source\n"
      "(paper: 148GB at the data source); large budgets cache decoded\n"
      "images (paper: 793GB of a true 842GB).\n");
}

}  // namespace

int main() {
  SourceSizes();
  Subsampling();
  Materialization();
  CachePlacements();
  return 0;
}
