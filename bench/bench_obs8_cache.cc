// Reproduces §5.3 (Observation 8): memory / cache-size estimation.
//   1. Source dataset sizes: Plumber's estimate vs ground truth for
//      every dataset (paper: exact for full sweeps).
//   2. Subsampling: tracing only ~1% of files (by stopping early) still
//      estimates the dataset size within a few percent.
//   3. Materialized sizes: decode amplification (~6x for ImageNet-style
//      decode) and the MultiBoxSSD filter's <1% reduction, with error
//      decreasing as tracing time grows.
//   4. (§4.1 extensions) Optimizer-driven tiered placement: when DRAM
//      fits, CachePlacementPass agrees with the greedy DRAM pass; when
//      only the SSD scratch tier fits, the disk-tier cache must beat
//      the uncached pipeline; a bottleneck scratch device must never be
//      chosen. The tiered scenarios are exit-code gates; the estimate
//      sections emit BENCH_METRIC accuracy ratios for the CI gate.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/pipeline/ops.h"
#include "src/workloads/datagen.h"

using namespace plumber;
using namespace plumber::bench;

namespace {

PipelineModel TraceWorkload(WorkloadEnv& env, const GraphDef& graph,
                            double seconds, int64_t max_batches = 0) {
  auto pipeline = std::move(Pipeline::Create(
                                graph, env.MakePipelineOptions()))
                      .value();
  TraceOptions topts;
  topts.trace_seconds = seconds;
  topts.max_batches = max_batches;
  topts.machine = MachineSpec::SetupA();
  const TraceSnapshot trace = CaptureTrace(*pipeline, topts);
  pipeline->Cancel();
  return std::move(PipelineModel::Build(trace, &env.udfs)).value();
}

void SourceSizes() {
  PrintHeader("Obs. 8: source dataset size estimates (full sweep)");
  Table table({"dataset", "true bytes", "estimated", "rel err"});
  double worst_err = 0;
  for (const auto& [workload_name, prefix] :
       std::vector<std::pair<std::string, std::string>>{
           {"resnet18", "imagenet/train-"},
           {"rcnn", "coco/train-"},
           {"transformer", "wmt17/train-"},
           {"gnmt", "wmt16/train-"}}) {
    WorkloadEnv env;
    auto workload = std::move(MakeWorkload(workload_name)).value();
    const double truth =
        static_cast<double>(DatasetBytes(env.fs, prefix));
    // Long trace sweeps the whole (scaled) dataset at least once.
    const GraphDef tuned = HeuristicConfiguration(workload.graph, 16);
    const PipelineModel model = TraceWorkload(env, tuned, 2.0);
    const auto est = model.EstimateSourceSizes().at(prefix);
    const double err = std::abs(est.estimated_bytes - truth) / truth;
    worst_err = std::max(worst_err, err);
    table.AddRow({prefix, Table::Num(truth, 0),
                  Table::Num(est.estimated_bytes, 0),
                  Table::Num(100 * err, 2) + "%"});
  }
  table.Print();
  // Worst-case estimate accuracy across datasets (1.0 = exact); gated
  // as a ratio so it travels across host classes.
  std::printf("BENCH_METRIC obs8.source_size_accuracy_rel %.4f\n",
              1.0 - worst_err);
}

void Subsampling() {
  PrintHeader("Obs. 8: subsampled size estimation (early-stopped traces)");
  Table table({"dataset", "batches traced", "files seen", "rel err"});
  double err_at_40 = 0;
  for (const int64_t batches : {2, 5, 10, 40}) {
    WorkloadEnv env;
    auto workload = std::move(MakeWorkload("resnet18")).value();
    const double truth =
        static_cast<double>(DatasetBytes(env.fs, "imagenet/train-"));
    const PipelineModel model = TraceWorkload(
        env, NaiveConfiguration(workload.graph), 5.0, batches);
    const auto est = model.EstimateSourceSizes().at("imagenet/train-");
    const double err = std::abs(est.estimated_bytes - truth) / truth;
    if (batches == 40) err_at_40 = err;
    table.AddRow({"imagenet/train-", std::to_string(batches),
                  std::to_string(est.files_seen) + "/" +
                      std::to_string(est.files_total),
                  Table::Num(100 * err, 2) + "%"});
  }
  table.Print();
  std::printf("Paper reference: 1%% of files -> ~1%% relative error.\n");
  std::printf("BENCH_METRIC obs8.subsample_accuracy_rel %.4f\n",
              1.0 - err_at_40);
}

void Materialization() {
  PrintHeader("Obs. 8: materialized-size estimates vs tracing time");
  // ResNet unfused: decode amplifies bytes ~6x; the estimate of the
  // decoded dataset should approach 6x the source size as tracing time
  // grows (paper: 6% error at 60s, <1% at 2min on full-size data).
  Table table({"trace budget", "est decode bytes", "true-ish (6x src)",
               "rel err", "ssd filter keep"});
  double err_at_longest = 0;
  for (const double seconds : {0.1, 0.25, 0.5, 1.5}) {
    WorkloadEnv env;
    auto resnet = std::move(MakeWorkload("resnet18")).value();
    const double source_truth =
        64 * 120 * 1100.0;  // payload bytes (approx; excludes framing)
    const PipelineModel model = TraceWorkload(
        env, HeuristicConfiguration(resnet.graph, 16), seconds);
    const NodeModel* decode = model.Find("decode");
    const double est = decode != nullptr ? decode->materialized_bytes : 0;
    const double truth = 6.0 * source_truth;
    const double err = std::abs(est - truth) / truth;

    // MultiBoxSSD filter reduction, same budget.
    WorkloadEnv ssd_env;
    auto ssd = std::move(MakeWorkload("multibox_ssd")).value();
    const PipelineModel ssd_model = TraceWorkload(
        ssd_env, HeuristicConfiguration(ssd.graph, 16), seconds);
    const NodeModel* filter = ssd_model.Find("filter");
    const NodeModel* ssd_decode = ssd_model.Find("decode");
    double keep = 0;
    if (filter != nullptr && ssd_decode != nullptr &&
        ssd_decode->completions > 0) {
      keep = static_cast<double>(filter->completions) /
             ssd_decode->completions;
    }
    if (seconds == 1.5) err_at_longest = err;
    table.AddRow({Table::Num(seconds, 2) + "s", Table::Num(est, 0),
                  Table::Num(truth, 0), Table::Num(100 * err, 1) + "%",
                  Table::Num(100 * keep, 1) + "%"});
  }
  table.Print();
  std::printf(
      "Paper reference: decode amplification ~6x; filter reduces the\n"
      "dataset by <1%%; error decreases with tracing time.\n");
  std::printf("BENCH_METRIC obs8.decode_size_accuracy_rel %.4f\n",
              1.0 - err_at_longest);
}

void CachePlacements() {
  PrintHeader("Obs. 8: cache placement across memory budgets (resnet18)");
  WorkloadEnv env;
  auto workload = std::move(MakeWorkload("resnet18")).value();
  const PipelineModel model = TraceWorkload(
      env, HeuristicConfiguration(workload.graph, 16), 1.0);
  Table table({"memory budget", "cache decision", "materialized bytes"});
  int feasible = 0;
  for (const double mb : {0.5, 2.0, 10.0, 60.0, 120.0}) {
    CachePlanOptions copts;
    copts.memory_bytes = static_cast<uint64_t>(mb * 1e6);
    const CacheDecision decision = PlanCache(model, copts);
    feasible += decision.feasible ? 1 : 0;
    table.AddRow({Table::Num(mb, 1) + " MB",
                  decision.feasible ? decision.node : "(none fits)",
                  decision.feasible
                      ? Table::Num(decision.materialized_bytes, 0)
                      : "-"});
  }
  table.Print();
  // Context only (never gated): how many of the swept budgets fit a
  // DRAM materialization at all.
  std::printf("BENCH_METRIC obs8.dram_budgets_feasible_count %d\n",
              feasible);
  std::printf(
      "Expected: tiny budgets fit nothing; mid budgets cache the source\n"
      "(paper: 148GB at the data source); large budgets cache decoded\n"
      "images (paper: 793GB of a true 842GB).\n");
}

// --------------------------------------------- tiered placement (§4.1)

struct CacheNodeInfo {
  int count = 0;            // cache ops in the graph
  std::string after;        // input of the (last) cache op
  std::string tier = "";    // "" = memory (no tier attr)
};

CacheNodeInfo FindCache(const GraphDef& graph) {
  CacheNodeInfo info;
  for (const NodeDef& node : graph.nodes()) {
    if (node.op != "cache") continue;
    ++info.count;
    if (!node.inputs.empty()) info.after = node.inputs[0];
    info.tier = node.GetString(kAttrCacheTier, "");
  }
  return info;
}

StatusOr<GraphDef> OptimizeSchedule(const Workload& workload,
                                    const MachineSpec& machine,
                                    const std::string& schedule) {
  Session session = MakeWorkloadSession(machine, workload.storage);
  OptimizeOptions options;
  options.trace_seconds = 0.25;
  options.evaluate_warmup_seconds = 0.8;
  options.lp_options.disk_bandwidth = workload.storage.max_bandwidth;
  auto result = session.FromGraph(NaiveConfiguration(workload.graph))
                    .OptimizeWith(schedule, options);
  if (!result.ok()) return result.status();
  return std::move(result->Graph());
}

double MeasureOn(const Workload& workload, const MachineSpec& machine,
                 const GraphDef& graph) {
  Session session = MakeWorkloadSession(machine, workload.storage);
  // Uncapped (no model step): the consumer cap would clip the cached
  // arm and hide the tier's effect on pipeline throughput.
  return MeasureRate(session, graph, 0.8, /*model_step_seconds=*/0, 1.6);
}

// The §4.1-extension scenarios for CachePlacementPass, exit-code gated:
//   (a) DRAM fits -> same placement as the greedy DRAM-only CachePass;
//   (b) only the SSD scratch tier fits -> the disk-tier cache beats the
//       uncached pipeline by >= 1.3x once warm;
//   (c) a bottleneck scratch device (slower than the pipeline it would
//       serve) is never chosen, even when nothing else fits.
bool TieredPlacement() {
  PrintHeader(
      "Obs. 8 extension: optimizer-driven tiered placement (multibox_ssd)");
  auto workload = std::move(MakeWorkload("multibox_ssd")).value();
  bool ok = true;

  // (a) DRAM fits: the tiered pass must agree with the greedy pass.
  MachineSpec dram = MachineSpec::SetupC(kMemoryScale);
  dram.scratch = DeviceSpec::NvmeSsd();
  dram.scratch_bytes = 1ull << 30;
  auto greedy =
      OptimizeSchedule(workload, dram, "parallelism,prefetch,cache,parallelism");
  auto tiered = OptimizeSchedule(workload, dram,
                                 "parallelism,prefetch,cache_tiers,parallelism");
  if (!greedy.ok() || !tiered.ok()) {
    std::printf("FAIL: DRAM-fit optimize error: %s / %s\n",
                greedy.status().ToString().c_str(),
                tiered.status().ToString().c_str());
    return false;
  }
  const CacheNodeInfo greedy_cache = FindCache(*greedy);
  const CacheNodeInfo tiered_cache = FindCache(*tiered);
  std::printf("DRAM fits:  cache -> after %s;  cache_tiers -> after %s (%s)\n",
              greedy_cache.count > 0 ? greedy_cache.after.c_str() : "(none)",
              tiered_cache.count > 0 ? tiered_cache.after.c_str() : "(none)",
              tiered_cache.tier.empty() ? "memory" : tiered_cache.tier.c_str());
  if (greedy_cache.count != 1 || tiered_cache.count != 1 ||
      greedy_cache.after != tiered_cache.after || !tiered_cache.tier.empty()) {
    std::printf(
        "FAIL: DRAM-fit placement disagrees with the greedy DRAM pass\n");
    ok = false;
  }

  // (b) SSD-only: DRAM far below the materialization, fast scratch.
  // Few cores keep the uncached arm decode-bound (the regime where a
  // cache matters); serving the materialization skips the decode.
  MachineSpec ssd = dram;
  ssd.memory_bytes = 1 << 16;
  ssd.num_cores = 2;
  auto uncached_graph =
      OptimizeSchedule(workload, ssd, "parallelism,prefetch");
  auto placed_graph = OptimizeSchedule(
      workload, ssd, "parallelism,prefetch,cache_tiers,parallelism");
  if (!uncached_graph.ok() || !placed_graph.ok()) {
    std::printf("FAIL: SSD-only optimize error: %s / %s\n",
                uncached_graph.status().ToString().c_str(),
                placed_graph.status().ToString().c_str());
    return false;
  }
  const CacheNodeInfo placed_cache = FindCache(*placed_graph);
  if (placed_cache.count != 1 || placed_cache.tier != "disk") {
    std::printf("FAIL: SSD-only run did not place a disk-tier cache\n");
    ok = false;
  }
  const double uncached = MeasureOn(workload, ssd, *uncached_graph);
  const double placed = MeasureOn(workload, ssd, *placed_graph);
  const double speedup = uncached > 0 ? placed / uncached : 0;
  std::printf("SSD only:   uncached %.1f mb/s, disk-tier cache %.1f mb/s "
              "(%.2fx, bar: >= 1.3x)\n",
              uncached, placed, speedup);
  std::printf("BENCH_METRIC obs8.tier_uncached_mbps %.4f\n", uncached);
  std::printf("BENCH_METRIC obs8.tier_disk_mbps %.4f\n", placed);
  std::printf("BENCH_METRIC obs8.tier_disk_speedup_rel %.4f\n", speedup);
  if (speedup < 1.3) {
    std::printf("FAIL: disk-tier speedup %.2fx below the 1.3x bar\n", speedup);
    ok = false;
  }

  // (c) Bottleneck scratch: serving from it would be slower than just
  // recomputing, so no tier must be chosen at all.
  MachineSpec slow = ssd;
  slow.scratch = DeviceSpec::TokenBucketLimit(2e4);
  auto refused =
      OptimizeSchedule(workload, slow, "parallelism,prefetch,cache_tiers");
  if (!refused.ok()) {
    std::printf("FAIL: bottleneck-scratch optimize error: %s\n",
                refused.status().ToString().c_str());
    return false;
  }
  const CacheNodeInfo refused_cache = FindCache(*refused);
  std::printf("Slow disk:  cache_tiers placed %d cache node(s) "
              "(bar: 0 — recompute beats a 20KB/s tier)\n",
              refused_cache.count);
  if (refused_cache.count != 0) {
    std::printf("FAIL: pass cached onto a scratch tier that bottlenecks\n");
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  SourceSizes();
  Subsampling();
  Materialization();
  CachePlacements();
  const bool ok = TieredPlacement();
  return ok ? 0 : 1;
}
